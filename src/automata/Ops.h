//===- automata/Ops.h - Automata algorithms ---------------------*- C++ -*-===//
///
/// \file
/// The classic constructions the verifier needs: subset-construction
/// determinization (hashed state sets over bitset closures), completion,
/// complement, product (intersection and union), emptiness with witness
/// extraction, Hopcroft minimization and language-equivalence checking —
/// plus *on-the-fly* variants (intersectIsEmpty, containedIn, implicit
/// product witnesses) that decide emptiness questions without ever
/// materializing the complements and products they probe.
///
/// Alphabet parameters are sorted, duplicate-free symbol vectors (the form
/// `Nfa::alphabet()`/`Dfa::alphabet()` return).
///
/// Every entry point is [[nodiscard]]: the kernels are pure queries and
/// constructions, so a dropped result is always a bug — and dropping a
/// governed Outcome would silently discard an Inconclusive verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_OPS_H
#define SUS_AUTOMATA_OPS_H

#include "automata/Nfa.h"
#include "support/ResourceGovernor.h"

#include <optional>
#include <vector>

namespace sus {
namespace automata {

/// Subset construction. The result is deterministic but not necessarily
/// complete (undefined transitions reject). State sets are tracked as
/// bitsets and hashed (support/HashUtil.h); successor sets are expanded
/// per dense symbol index, in ascending symbol order, so the result's
/// state numbering is the deterministic BFS discovery order.
[[nodiscard]] Dfa determinize(const Nfa &N);

/// Adds a non-accepting sink so that every state has a transition on every
/// symbol in \p Alphabet (sorted, unique). Edges on symbols outside
/// \p Alphabet are copied but not completed, mirroring the inputs.
[[nodiscard]] Dfa complete(const Dfa &D, const std::vector<SymbolCode> &Alphabet);

/// Complement w.r.t. \p Alphabet ∪ D's own alphabet (completes first, then
/// flips acceptance). \p Alphabet must be sorted and unique.
[[nodiscard]] Dfa complement(const Dfa &D, const std::vector<SymbolCode> &Alphabet);

/// Product automaton accepting the intersection of the two languages.
/// Only the reachable part is built. Prefer intersectIsEmpty /
/// intersectWitness when only emptiness of the product is needed.
[[nodiscard]] Dfa intersect(const Dfa &A, const Dfa &B);

/// Product automaton accepting the union of the two languages; both inputs
/// are completed over the joint alphabet first.
[[nodiscard]] Dfa unite(const Dfa &A, const Dfa &B);

/// Returns a shortest accepted word if the language is non-empty, else
/// std::nullopt. (BFS over reachable states.)
[[nodiscard]] std::optional<std::vector<SymbolCode>> shortestWitness(const Dfa &D);

/// Returns true if the language of \p D is empty. (Early-exit BFS; no
/// witness bookkeeping.)
[[nodiscard]] bool isEmpty(const Dfa &D);

/// Returns true if L(A) ∩ L(B) = ∅, exploring the product on the fly with
/// early exit — the product is never materialized. Equivalent to
/// isEmpty(intersect(A, B)).
[[nodiscard]] bool intersectIsEmpty(const Dfa &A, const Dfa &B);

/// Shortest word in L(A) ∩ L(B) if any, else std::nullopt, via BFS over
/// the *implicit* product. Returns exactly the witness that
/// shortestWitness(intersect(A, B)) would.
[[nodiscard]] std::optional<std::vector<SymbolCode>>
intersectWitness(const Dfa &A, const Dfa &B);

/// Returns true if L(A) ⊆ L(B), exploring the implicit product of A with
/// the (virtual) completed complement of B — neither the complement nor
/// the product is built.
[[nodiscard]] bool containedIn(const Dfa &A, const Dfa &B);

/// Shortest word in L(A) \ L(B) if any (the ⊆-counterexample), else
/// std::nullopt. Same implicit-product BFS as containedIn, with
/// predecessor tracking; matches the witness the materialized
/// shortestWitness(intersect(A, complement(B, joint))) pipeline returns.
[[nodiscard]] std::optional<std::vector<SymbolCode>>
differenceWitness(const Dfa &A, const Dfa &B);

/// Hopcroft minimization — genuine partition refinement with a splitter
/// worklist over per-symbol inverse transitions, O(|Σ|·n·log n). The input
/// is completed over its own alphabet first; the result is the canonical
/// minimal complete DFA (minus any unreachable states), numbered by
/// first-occurrence scan order for determinism.
[[nodiscard]] Dfa minimize(const Dfa &D);

/// Language equivalence via two on-the-fly containment checks; no
/// complement or product automata are materialized.
[[nodiscard]] bool equivalent(const Dfa &A, const Dfa &B);

//===----------------------------------------------------------------------===//
// Governed variants
//===----------------------------------------------------------------------===//
//
// Each governed kernel polls \p Gov once per popped work item and charges
// materialized states against the relevant budget (SubsetStates for
// determinize, ProductStates for the product/emptiness family) *before*
// allocating them. On a trip the kernel abandons its partial result and
// returns the ResourceExhausted; it never throws and never returns a
// half-built automaton. With an unhit governor the result is bit-for-bit
// identical to the ungoverned overload (same algorithm, same numbering).

[[nodiscard]] Outcome<Dfa> determinize(const Nfa &N, const ResourceGovernor &Gov);
[[nodiscard]] Outcome<Dfa> intersect(const Dfa &A, const Dfa &B,
                                     const ResourceGovernor &Gov);
[[nodiscard]] Outcome<bool> intersectIsEmpty(const Dfa &A, const Dfa &B,
                                             const ResourceGovernor &Gov);
[[nodiscard]] Outcome<std::optional<std::vector<SymbolCode>>>
intersectWitness(const Dfa &A, const Dfa &B, const ResourceGovernor &Gov);
[[nodiscard]] Outcome<bool> containedIn(const Dfa &A, const Dfa &B,
                                        const ResourceGovernor &Gov);
[[nodiscard]] Outcome<std::optional<std::vector<SymbolCode>>>
differenceWitness(const Dfa &A, const Dfa &B, const ResourceGovernor &Gov);
[[nodiscard]] Outcome<Dfa> minimize(const Dfa &D, const ResourceGovernor &Gov);
[[nodiscard]] Outcome<bool> equivalent(const Dfa &A, const Dfa &B,
                                       const ResourceGovernor &Gov);

} // namespace automata
} // namespace sus

#endif // SUS_AUTOMATA_OPS_H
