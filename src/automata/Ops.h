//===- automata/Ops.h - Automata algorithms ---------------------*- C++ -*-===//
///
/// \file
/// The classic constructions the verifier needs: subset-construction
/// determinization, completion, complement, product (intersection and
/// union), emptiness with witness extraction, Hopcroft minimization and
/// language-equivalence checking.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_OPS_H
#define SUS_AUTOMATA_OPS_H

#include "automata/Nfa.h"

#include <optional>
#include <set>
#include <vector>

namespace sus {
namespace automata {

/// Subset construction. The result is deterministic but not necessarily
/// complete (undefined transitions reject).
Dfa determinize(const Nfa &N);

/// Adds a non-accepting sink so that every state has a transition on every
/// symbol in \p Alphabet.
Dfa complete(const Dfa &D, const std::set<SymbolCode> &Alphabet);

/// Complement w.r.t. \p Alphabet (completes first, then flips acceptance).
Dfa complement(const Dfa &D, const std::set<SymbolCode> &Alphabet);

/// Product automaton accepting the intersection of the two languages.
/// Only the reachable part is built.
Dfa intersect(const Dfa &A, const Dfa &B);

/// Product automaton accepting the union of the two languages; both inputs
/// are completed over the joint alphabet first.
Dfa unite(const Dfa &A, const Dfa &B);

/// Returns a shortest accepted word if the language is non-empty, else
/// std::nullopt. (BFS over reachable states.)
std::optional<std::vector<SymbolCode>> shortestWitness(const Dfa &D);

/// Returns true if the language of \p D is empty.
bool isEmpty(const Dfa &D);

/// Hopcroft minimization. The input is completed over its own alphabet
/// first; the result is the canonical minimal complete DFA (minus any
/// unreachable states).
Dfa minimize(const Dfa &D);

/// Language equivalence via symmetric-difference emptiness.
bool equivalent(const Dfa &A, const Dfa &B);

} // namespace automata
} // namespace sus

#endif // SUS_AUTOMATA_OPS_H
