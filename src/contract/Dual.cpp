//===- contract/Dual.cpp - Dual contracts ----------------------------------===//

#include "contract/Dual.h"

#include "support/Casting.h"

#include <cassert>
#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

class Dualizer {
public:
  explicit Dualizer(HistContext &Ctx) : Ctx(Ctx) {}

  const Expr *visit(const Expr *E) {
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *Result = compute(E);
    Memo.emplace(E, Result);
    return Result;
  }

private:
  const Expr *compute(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Var:
      return E;
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      return Ctx.mu(M->var(), visit(M->body()));
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return Ctx.seq(visit(S->head()), visit(S->tail()));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      std::vector<ChoiceBranch> Branches;
      Branches.reserve(C->numBranches());
      for (const ChoiceBranch &B : C->branches())
        Branches.push_back({B.Guard.complement(), visit(B.Body)});
      // Polarities flip: Σ becomes ⊕ and vice versa.
      return E->kind() == ExprKind::ExtChoice
                 ? Ctx.intChoice(std::move(Branches))
                 : Ctx.extChoice(std::move(Branches));
    }
    case ExprKind::Event:
    case ExprKind::Request:
    case ExprKind::Framing:
    case ExprKind::CloseMark:
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      assert(false && "dualContract requires a contract; project first");
      return E;
    }
    return E;
  }

  HistContext &Ctx;
  std::unordered_map<const Expr *, const Expr *> Memo;
};

} // namespace

const Expr *sus::contract::dualContract(HistContext &Ctx, const Expr *E) {
  Dualizer D(Ctx);
  return D.visit(E);
}
