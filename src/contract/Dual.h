//===- contract/Dual.h - Dual contracts -------------------------*- C++ -*-===//
///
/// \file
/// The syntactic dual of a contract: every output becomes an input and
/// vice versa, so internal choices become external ones. The dual is the
/// canonical compliant partner — for any contract C in our (guarded,
/// tail-recursive) fragment, C ⊢ dual(C) holds; the property suite checks
/// this against the §4 model checker on randomly generated contracts.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_DUAL_H
#define SUS_CONTRACT_DUAL_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

namespace sus {
namespace contract {

/// Computes the dual contract. \p E must be in the contract fragment
/// (see isContract()); events/framings/requests are not dualizable.
const hist::Expr *dualContract(hist::HistContext &Ctx, const hist::Expr *E);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_DUAL_H
