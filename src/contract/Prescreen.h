//===- contract/Prescreen.h - Cheap compliance pre-screens ------*- C++ -*-===//
///
/// \file
/// Necessary-condition pre-screens for Def. 4 compliance, run before the
/// full product automaton is paid for. Each check may only reject a pair
/// that the full check would also reject (soundness argument in DESIGN.md
/// §10):
///
///  - *alphabet screen*: a synchronized step needs an action of the client
///    whose dual the service can ever perform. If the dualized client
///    alphabet and the service alphabet are disjoint, the product has no
///    synchronized transition at all, so compliance reduces to the first
///    clause of Def. 4 at the initial state — which fails as soon as the
///    client has any non-empty ready set.
///
///  - *first-step screen*: Def. 4 clause (1) applied literally to the
///    initial ready sets: whenever H1 ⇓ C and H2 ⇓ S, either C = ∅ or
///    C ∩ S̄ ≠ ∅. A pair failing this is stuck before the first
///    synchronization; the product checker would find the same stuck
///    state, only after building the product.
///
/// A ContractSummary caches everything both screens need (initial ready
/// sets, syntactic alphabet, nullability) so repeated screening of the
/// same contract is set intersections only — this is what ServiceIndex
/// memoizes per published service and per request body.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_PRESCREEN_H
#define SUS_CONTRACT_PRESCREEN_H

#include "contract/ReadySets.h"
#include "hist/Expr.h"
#include "hist/HistContext.h"

#include <set>
#include <vector>

namespace sus {
namespace contract {

/// The pre-screen view of one contract (a projected behaviour).
struct ContractSummary {
  /// False when the projection left the contract fragment: no screen may
  /// reject anything then, the summary is a conservative "anything goes".
  bool Screenable = false;

  /// All S with H ⇓ S at the initial state (Def. 3), deduplicated.
  std::vector<ReadySet> InitialSets;

  /// Every communication action occurring syntactically anywhere in the
  /// contract — a superset of the actions reachable in its LTS, which is
  /// exactly the direction a *necessary* condition needs.
  std::set<hist::CommAction> Alphabet;

  /// True when some initial ready set is non-empty: the client cannot just
  /// terminate, it needs a synchronization partner.
  bool NeedsSync = false;

  /// The smallest non-empty initial ready set (empty when !NeedsSync).
  /// Every compliant partner must offer a dual of one of these actions in
  /// each of its ready sets, so this is the tightest single-set key for
  /// indexed candidate lookup.
  ReadySet IndexKey;
};

/// Summarizes the *projection* of \p E (projection computed here via
/// project(); pass a request body or a published service verbatim).
ContractSummary summarizeContract(hist::HistContext &Ctx,
                                  const hist::Expr *E);

/// Why a pre-screen rejected a candidate pair (or didn't).
enum class PrescreenVerdict : uint8_t {
  Pass,          ///< No necessary condition failed; pay for the product.
  AlphabetReject,///< Dualized client alphabet ∩ service alphabet = ∅.
  FirstStepReject///< Initial ready sets violate Def. 4 clause (1).
};

/// Runs both screens, cheapest first. Only returns a Reject when the full
/// Def. 4 check is guaranteed to reject the same pair.
PrescreenVerdict prescreenCompliance(const ContractSummary &Client,
                                     const ContractSummary &Service);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_PRESCREEN_H
