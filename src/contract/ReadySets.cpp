//===- contract/ReadySets.cpp - Observable ready sets (Def. 3) -----------===//

#include "contract/ReadySets.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

void dedupe(std::vector<ReadySet> &Sets) {
  std::sort(Sets.begin(), Sets.end());
  Sets.erase(std::unique(Sets.begin(), Sets.end()), Sets.end());
}

std::vector<ReadySet> compute(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
    return {ReadySet{}};

  case ExprKind::IntChoice: {
    // One singleton ready set per output branch: the sender decides.
    std::vector<ReadySet> Sets;
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      Sets.push_back(ReadySet{B.Guard});
    dedupe(Sets);
    return Sets;
  }

  case ExprKind::ExtChoice: {
    // One combined ready set: all inputs are available at once.
    ReadySet S;
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      S.insert(B.Guard);
    return {std::move(S)};
  }

  case ExprKind::Mu:
    return compute(cast<MuExpr>(E)->body());

  case ExprKind::Seq: {
    const auto *Sq = cast<SeqExpr>(E);
    std::vector<ReadySet> HeadSets = compute(Sq->head());
    std::vector<ReadySet> Result;
    bool HeadNullable = false;
    for (ReadySet &S : HeadSets) {
      if (S.empty())
        HeadNullable = true;
      else
        Result.push_back(std::move(S));
    }
    if (HeadNullable) {
      for (ReadySet &S : compute(Sq->tail()))
        Result.push_back(std::move(S));
    }
    dedupe(Result);
    return Result;
  }

  case ExprKind::Event:
  case ExprKind::Request:
  case ExprKind::Framing:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    assert(false && "ready sets are defined on contracts; project first");
    return {ReadySet{}};
  }
  return {ReadySet{}};
}

} // namespace

std::vector<ReadySet> sus::contract::readySets(const Expr *E) {
  return compute(E);
}

ReadySet sus::contract::complementSet(const ReadySet &S) {
  ReadySet Out;
  for (const CommAction &A : S)
    Out.insert(A.complement());
  return Out;
}

bool sus::contract::canSynchronize(const ReadySet &C, const ReadySet &S) {
  for (const CommAction &A : C)
    if (S.count(A.complement()))
      return true;
  return false;
}
