//===- contract/ComplianceProduct.h - Product automaton (Def. 5) -*- C++ -*-===//
///
/// \file
/// The product automaton H1 ⊗ H2 of Definition 5. States are pairs of
/// contract derivatives; a τ-transition synchronizes an action of one party
/// with the co-action of the other; *final* states are the stuck
/// configurations, characterized state-locally:
///
///   ⟨H1,H2⟩ ∈ F  iff  H1 ≠ ε ∧ (¬(i) ∨ ¬(ii)) where
///     (i)  ∃a. H1 --ā--> ∨ H2 --ā-->            (someone can send)
///     (ii) every output either party can fire has a matching input on
///          the other side.
///
/// Theorem 1: H1 ⊢ H2 iff L(H1 ⊗ H2) = ∅, i.e. no final state is
/// reachable. Because the final-state predicate inspects one state at a
/// time, compliance is an invariant property (Thm. 2) and hence a safety
/// property (Cor. 1) — this class *is* that model checker.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_COMPLIANCEPRODUCT_H
#define SUS_CONTRACT_COMPLIANCEPRODUCT_H

#include "automata/Nfa.h"
#include "hist/Derive.h"
#include "hist/HistContext.h"
#include "support/ResourceGovernor.h"

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace sus {
namespace contract {

/// The reachable part of H1 ⊗ H2.
class ComplianceProduct {
public:
  using StateIndex = uint32_t;

  struct State {
    const hist::Expr *Client;
    const hist::Expr *Server;
    bool Final; ///< Stuck configuration (Def. 5's F).
  };

  struct Edge {
    /// Formally the label is τ; we remember the client-side action that
    /// synchronized, for witness readability.
    hist::CommAction ClientAction;
    StateIndex Target;
  };

  /// Builds the product of two *contracts* (use project() first).
  /// Exploration is capped at \p MaxStates; a non-null \p Gov is polled
  /// per popped pair and charged one ProductStates unit per interned pair.
  ComplianceProduct(hist::HistContext &Ctx, const hist::Expr *Client,
                    const hist::Expr *Server, size_t MaxStates = 1 << 20,
                    const ResourceGovernor *Gov = nullptr);

  /// True if no final (stuck) state is reachable: L(H1 ⊗ H2) = ∅.
  bool isEmptyLanguage() const { return !FirstFinal.has_value(); }

  /// False if exploration hit MaxStates (then emptiness is not decided).
  bool isComplete() const { return Complete; }

  /// Set when the governor stopped exploration (deadline, cancellation or
  /// product-state budget). Implies !isComplete().
  const std::optional<ResourceExhausted> &exhausted() const {
    return Exhausted;
  }

  size_t numStates() const { return States.size(); }
  const State &state(StateIndex I) const { return States[I]; }
  const std::vector<Edge> &edges(StateIndex I) const { return Out[I]; }
  StateIndex startIndex() const { return 0; }

  /// Index of some reachable final state, if any.
  std::optional<StateIndex> firstFinal() const { return FirstFinal; }

  /// Shortest synchronization path from the start to \p Target.
  std::vector<hist::CommAction> pathTo(StateIndex Target) const;

  /// Renders the product as a classic DFA over a single-letter (τ)
  /// alphabet, with final states accepting — the automaton of Thm. 1 whose
  /// language emptiness is checked.
  automata::Dfa toDfa() const;

  /// Emits the product as a Graphviz digraph; stuck states are doubled
  /// and red, edges carry the synchronized client action.
  void printDot(const hist::HistContext &Ctx, std::ostream &OS,
                const std::string &Name = "product") const;

private:
  std::vector<State> States;
  std::vector<std::vector<Edge>> Out;
  std::vector<std::optional<std::pair<StateIndex, hist::CommAction>>> Pred;
  std::optional<StateIndex> FirstFinal;
  std::optional<ResourceExhausted> Exhausted;
  bool Complete = true;
};

/// Decides Def. 5's final-state predicate for the pair ⟨C, S⟩, given their
/// one-step derivatives.
bool isStuckPair(const hist::Expr *Client,
                 const std::vector<hist::Transition> &ClientSteps,
                 const std::vector<hist::Transition> &ServerSteps);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_COMPLIANCEPRODUCT_H
