//===- contract/Project.h - Projection onto communications ------*- C++ -*-===//
///
/// \file
/// The projection H! of §4, which erases access events, policy framings and
/// nested service requests, leaving a behavioural contract:
///
///   (H·H′)! = H!·H′!      h! = h         ϕ⟦H⟧! = H!
///   (µh.H)! = µh.(H)!     (Σᵢ aᵢ.Hᵢ)! = Σᵢ aᵢ.(Hᵢ)!
///   (⊕ᵢ āᵢ.Hᵢ)! = ⊕ᵢ āᵢ.(Hᵢ)!
///   (open_{r,ϕ}.H.close_{r,ϕ})! = ε! = α! = ε
///
/// The result is a contract in the sense of Castagna–Gesbert–Padovani:
/// internal choices guard outputs, external choices guard inputs, and
/// recursion is guarded tail recursion, so its transition system is finite
/// state.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_PROJECT_H
#define SUS_CONTRACT_PROJECT_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

namespace sus {
namespace contract {

/// Computes H! (hash-consed, memoized).
const hist::Expr *project(hist::HistContext &Ctx, const hist::Expr *E);

/// True if \p E is already in the contract fragment: built only from
/// ε, h, µh.H, Σ, ⊕ and sequential composition.
bool isContract(const hist::Expr *E);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_PROJECT_H
