//===- contract/Compliance.cpp - The compliance relation ⊢ ----------------===//

#include "contract/Compliance.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include "contract/ReadySets.h"
#include "support/HashUtil.h"

#include <deque>
#include <unordered_set>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

std::string ComplianceWitness::str(const HistContext &Ctx) const {
  std::string Out;
  for (size_t I = 0; I < Path.size(); ++I) {
    if (I != 0)
      Out += " . ";
    Out += Path[I].str(Ctx.interner());
  }
  if (!Path.empty())
    Out += " --> ";
  Out += "stuck: client = ";
  Out += print(Ctx, ClientStuck);
  Out += ", server = ";
  Out += print(Ctx, ServerStuck);
  return Out;
}

ComplianceResult sus::contract::checkCompliance(HistContext &Ctx,
                                                const Expr *ClientContract,
                                                const Expr *ServerContract,
                                                const ResourceGovernor *Gov) {
  trace::Span Span("compliance.check", "pipeline");
  static metrics::Counter &Checks = metrics::counter("compliance.checks");
  Checks.add();
  ComplianceProduct Product(Ctx, ClientContract, ServerContract,
                            /*MaxStates=*/1 << 20, Gov);
  Span.count("states", static_cast<int64_t>(Product.numStates()));
  ComplianceResult Result;
  Result.ExploredStates = Product.numStates();
  Result.Compliant = Product.isEmptyLanguage() && Product.isComplete();
  if (std::optional<ComplianceProduct::StateIndex> Final =
          Product.firstFinal()) {
    // A stuck state reached before any trip is a conclusive refutation.
    ComplianceWitness W;
    W.Path = Product.pathTo(*Final);
    W.ClientStuck = Product.state(*Final).Client;
    W.ServerStuck = Product.state(*Final).Server;
    Result.Witness = std::move(W);
  } else if (Product.exhausted()) {
    Result.Exhausted = Product.exhausted();
  }
  return Result;
}

ComplianceResult sus::contract::checkServiceCompliance(HistContext &Ctx,
                                                       const Expr *Client,
                                                       const Expr *Server,
                                                       const ResourceGovernor *Gov) {
  return checkCompliance(Ctx, project(Ctx, Client), project(Ctx, Server), Gov);
}

bool sus::contract::checkComplianceDirect(HistContext &Ctx,
                                          const Expr *ClientContract,
                                          const Expr *ServerContract) {
  struct PairHash {
    size_t operator()(const std::pair<const Expr *, const Expr *> &P) const {
      return hashAll(reinterpret_cast<uintptr_t>(P.first),
                     reinterpret_cast<uintptr_t>(P.second));
    }
  };
  std::unordered_set<std::pair<const Expr *, const Expr *>, PairHash> Seen;
  std::deque<std::pair<const Expr *, const Expr *>> Work;

  Seen.insert({ClientContract, ServerContract});
  Work.push_back({ClientContract, ServerContract});

  while (!Work.empty()) {
    auto [C, S] = Work.front();
    Work.pop_front();

    // Condition (1) of Def. 4 over all ready-set pairs.
    std::vector<ReadySet> ClientSets = readySets(C);
    std::vector<ReadySet> ServerSets = readySets(S);
    for (const ReadySet &CS : ClientSets) {
      if (CS.empty())
        continue; // The client has completed its operations.
      for (const ReadySet &SS : ServerSets)
        if (!canSynchronize(CS, SS))
          return false;
    }

    // Condition (2): compliance is preserved under synchronized steps.
    std::vector<Transition> ClientSteps = derive(Ctx, C);
    std::vector<Transition> ServerSteps = derive(Ctx, S);
    for (const Transition &CT : ClientSteps) {
      if (!CT.L.isComm())
        continue;
      for (const Transition &ST : ServerSteps) {
        if (!ST.L.isComm())
          continue;
        if (ST.L.asComm() != CT.L.asComm().complement())
          continue;
        auto Key = std::make_pair(CT.Target, ST.Target);
        if (Seen.insert(Key).second)
          Work.push_back(Key);
      }
    }
  }
  return true;
}
