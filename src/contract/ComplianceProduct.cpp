//===- contract/ComplianceProduct.cpp - Product automaton (Def. 5) -------===//

#include "contract/ComplianceProduct.h"

#include "automata/KernelStats.h"
#include "automata/Ops.h"
#include "hist/Printer.h"
#include "support/DotWriter.h"
#include "support/HashUtil.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

bool sus::contract::isStuckPair(const Expr *Client,
                                const std::vector<Transition> &ClientSteps,
                                const std::vector<Transition> &ServerSteps) {
  // The client may terminate whenever its operations are complete; Def. 5
  // only marks states with residual client work.
  if (Client->isEmpty())
    return false;

  // Condition (i): somebody can send.
  bool SomeoneOutputs = false;
  for (const Transition &T : ClientSteps)
    if (T.L.isComm() && T.L.asComm().isOutput()) {
      SomeoneOutputs = true;
      break;
    }
  if (!SomeoneOutputs)
    for (const Transition &T : ServerSteps)
      if (T.L.isComm() && T.L.asComm().isOutput()) {
        SomeoneOutputs = true;
        break;
      }
  if (!SomeoneOutputs)
    return true; // ¬(i): both sides wait on inputs (or are stuck).

  // Condition (ii): every output has a matching input on the other side.
  auto HasInput = [](const std::vector<Transition> &Steps, Symbol Channel) {
    for (const Transition &T : Steps)
      if (T.L.isComm() && T.L.asComm().isInput() &&
          T.L.asComm().Channel == Channel)
        return true;
    return false;
  };
  for (const Transition &T : ClientSteps)
    if (T.L.isComm() && T.L.asComm().isOutput() &&
        !HasInput(ServerSteps, T.L.asComm().Channel))
      return true; // ¬(ii).
  for (const Transition &T : ServerSteps)
    if (T.L.isComm() && T.L.asComm().isOutput() &&
        !HasInput(ClientSteps, T.L.asComm().Channel))
      return true; // ¬(ii).
  return false;
}

ComplianceProduct::ComplianceProduct(HistContext &Ctx, const Expr *Client,
                                     const Expr *Server, size_t MaxStates,
                                     const ResourceGovernor *Gov) {
  // The pair-BFS below is the Thm. 1 emptiness kernel; account it with the
  // automata kernels so bench_verifier can report kernel time separately.
  automata::KernelTimerScope Timer("contract.compliance_product");
  struct PairHash {
    size_t operator()(const std::pair<const Expr *, const Expr *> &P) const {
      return hashAll(reinterpret_cast<uintptr_t>(P.first),
                     reinterpret_cast<uintptr_t>(P.second));
    }
  };
  std::unordered_map<std::pair<const Expr *, const Expr *>, StateIndex,
                     PairHash>
      Index;
  std::deque<StateIndex> Work;

  auto InternState = [&](const Expr *C, const Expr *S,
                         std::optional<std::pair<StateIndex, CommAction>>
                             From) -> std::optional<StateIndex> {
    auto Key = std::make_pair(C, S);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    if (States.size() >= MaxStates) {
      Complete = false;
      return std::nullopt;
    }
    if (Gov) {
      if (std::optional<ResourceExhausted> E =
              Gov->charge(ResourceKind::ProductStates, States.size() + 1)) {
        Exhausted = E;
        Complete = false;
        return std::nullopt;
      }
    }
    StateIndex I = static_cast<StateIndex>(States.size());
    States.push_back({C, S, /*Final=*/false});
    Out.emplace_back();
    Pred.push_back(From);
    Index.emplace(Key, I);
    Work.push_back(I);
    return I;
  };

  InternState(Client, Server, std::nullopt);

  while (!Work.empty()) {
    if (Gov) {
      if (std::optional<ResourceExhausted> E = Gov->poll()) {
        Exhausted = E;
        Complete = false;
        break;
      }
    }
    StateIndex I = Work.front();
    Work.pop_front();
    const Expr *C = States[I].Client;
    const Expr *S = States[I].Server;

    std::vector<Transition> ClientSteps = derive(Ctx, C);
    std::vector<Transition> ServerSteps = derive(Ctx, S);

    if (isStuckPair(C, ClientSteps, ServerSteps)) {
      States[I].Final = true;
      if (!FirstFinal)
        FirstFinal = I;
      // Final states have no outgoing transitions (Def. 5's δ excludes
      // them): they are the accepted stuck configurations.
      continue;
    }

    for (const Transition &CT : ClientSteps) {
      if (!CT.L.isComm())
        continue;
      CommAction CA = CT.L.asComm();
      for (const Transition &ST : ServerSteps) {
        if (!ST.L.isComm())
          continue;
        if (ST.L.asComm() != CA.complement())
          continue;
        std::optional<StateIndex> Next =
            InternState(CT.Target, ST.Target, std::make_pair(I, CA));
        if (Next)
          Out[I].push_back({CA, *Next});
      }
    }
  }
}

std::vector<CommAction> ComplianceProduct::pathTo(StateIndex Target) const {
  std::vector<CommAction> Path;
  StateIndex S = Target;
  while (Pred[S]) {
    Path.push_back(Pred[S]->second);
    S = Pred[S]->first;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

void ComplianceProduct::printDot(const HistContext &Ctx, std::ostream &OS,
                                 const std::string &Name) const {
  DotWriter W(Name);
  auto Shorten = [](std::string S) {
    if (S.size() > 28)
      S = S.substr(0, 25) + "...";
    return S;
  };
  for (StateIndex I = 0; I < States.size(); ++I) {
    const State &S = States[I];
    std::string Label = Shorten(print(Ctx, S.Client)) + "  |  " +
                        Shorten(print(Ctx, S.Server));
    W.node("p" + std::to_string(I), Label,
           S.Final ? "shape=doublecircle, color=red" : "shape=box");
  }
  for (StateIndex I = 0; I < States.size(); ++I)
    for (const Edge &E : Out[I])
      W.edge("p" + std::to_string(I), "p" + std::to_string(E.Target),
             "tau(" + E.ClientAction.str(Ctx.interner()) + ")");
  W.print(OS);
}

automata::Dfa ComplianceProduct::toDfa() const {
  // Alphabet {τ}: symbol code 0. The product is deterministic only up to
  // branching; collapse it by keeping the automaton nondeterministic and
  // determinizing — but a DFA over one letter cannot express branching, so
  // instead expose the reachability structure: each distinct edge gets the
  // same τ code and the result is built via the NFA path.
  automata::Nfa N;
  for (const State &S : States)
    N.addState(S.Final);
  N.setStart(0);
  for (StateIndex I = 0; I < States.size(); ++I)
    for (const Edge &E : Out[I])
      N.addEdge(I, /*Sym=*/0, E.Target);
  return automata::determinize(N);
}
