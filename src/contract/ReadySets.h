//===- contract/ReadySets.h - Observable ready sets (Def. 3) ----*- C++ -*-===//
///
/// \file
/// Observable ready sets H ⇓ S of Definition 3: the sets of communication
/// actions a contract is ready to perform. An internal choice offers one
/// output at a time (one singleton ready set per branch); an external
/// choice offers all its inputs at once (one combined ready set):
///
///   ε ⇓ ∅     h ⇓ ∅     ⊕ᵢ āᵢ.Hᵢ ⇓ {āᵢ}     Σᵢ aᵢ.Hᵢ ⇓ ∪ᵢ{aᵢ}
///   µh.H ⇓ S if H ⇓ S
///   H·H′ ⇓ S if H ⇓ S, S ≠ ∅;   H·H′ ⇓ S if H ⇓ ∅ and H′ ⇓ S
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_READYSETS_H
#define SUS_CONTRACT_READYSETS_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

#include <set>
#include <vector>

namespace sus {
namespace contract {

/// One observable ready set.
using ReadySet = std::set<hist::CommAction>;

/// All S with H ⇓ S, deduplicated, in a deterministic order.
/// \p E must be in the contract fragment (see isContract()).
std::vector<ReadySet> readySets(const hist::Expr *E);

/// The complement set  S̄ = {ā | a ∈ S}.
ReadySet complementSet(const ReadySet &S);

/// True if the two ready sets can synchronize: C ∩ S̄ ≠ ∅.
bool canSynchronize(const ReadySet &C, const ReadySet &S);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_READYSETS_H
