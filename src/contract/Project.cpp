//===- contract/Project.cpp - Projection onto communications -------------===//

#include "contract/Project.h"

#include "support/Casting.h"
#include "support/Trace.h"

#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

class Projector {
public:
  explicit Projector(HistContext &Ctx) : Ctx(Ctx) {}

  const Expr *visit(const Expr *E) {
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *Result = compute(E);
    Memo.emplace(E, Result);
    return Result;
  }

private:
  const Expr *compute(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Event:
    case ExprKind::Request:   // Nested sessions vanish: (open..close)! = ε.
    case ExprKind::CloseMark: // Residuals of open/framing vanish likewise.
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      return Ctx.empty();
    case ExprKind::Var:
      return E;
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      return Ctx.mu(M->var(), visit(M->body()));
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return Ctx.seq(visit(S->head()), visit(S->tail()));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      std::vector<ChoiceBranch> Branches;
      Branches.reserve(C->numBranches());
      for (const ChoiceBranch &B : C->branches())
        Branches.push_back({B.Guard, visit(B.Body)});
      return E->kind() == ExprKind::ExtChoice
                 ? Ctx.extChoice(std::move(Branches))
                 : Ctx.intChoice(std::move(Branches));
    }
    case ExprKind::Framing:
      return visit(cast<FramingExpr>(E)->body());
    }
    return Ctx.empty();
  }

  HistContext &Ctx;
  std::unordered_map<const Expr *, const Expr *> Memo;
};

} // namespace

const Expr *sus::contract::project(HistContext &Ctx, const Expr *E) {
  trace::Span Span("projection", "pipeline");
  Projector P(Ctx);
  return P.visit(E);
}

bool sus::contract::isContract(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
    return true;
  case ExprKind::Mu:
    return isContract(cast<MuExpr>(E)->body());
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    return isContract(S->head()) && isContract(S->tail());
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice: {
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      if (!isContract(B.Body))
        return false;
    return true;
  }
  case ExprKind::Event:
  case ExprKind::Request:
  case ExprKind::Framing:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return false;
  }
  return false;
}
