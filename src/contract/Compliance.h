//===- contract/Compliance.h - The compliance relation ⊢ --------*- C++ -*-===//
///
/// \file
/// Service compliance (Def. 4): Hc ⊢ Hs when, writing H1 = Hc! and
/// H2 = Hs!, (1) whenever H1 ⇓ C and H2 ⇓ S, either C = ∅ (the client can
/// terminate) or C ∩ S̄ ≠ ∅ (they can synchronize), and (2) compliance is
/// preserved by every synchronized step. This header offers:
///
///  - checkCompliance: the Thm. 1 model checker via the product automaton,
///    with a concrete witness path to a stuck state on failure;
///  - checkComplianceDirect: a ready-set-based coinductive decision
///    procedure following Def. 4 literally, used to cross-validate the
///    product construction (Lemma 1) in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CONTRACT_COMPLIANCE_H
#define SUS_CONTRACT_COMPLIANCE_H

#include "contract/ComplianceProduct.h"
#include "contract/Project.h"
#include "hist/HistContext.h"
#include "hist/Printer.h"

#include <optional>
#include <string>
#include <vector>

namespace sus {
namespace contract {

/// A concrete run demonstrating non-compliance.
struct ComplianceWitness {
  /// Client-side actions synchronized before getting stuck.
  std::vector<hist::CommAction> Path;
  /// The residual contracts at the stuck state.
  const hist::Expr *ClientStuck = nullptr;
  const hist::Expr *ServerStuck = nullptr;

  /// Human-readable rendering, e.g. "Req! . IdC? --> stuck: ...".
  std::string str(const hist::HistContext &Ctx) const;
};

/// Outcome of a compliance check.
struct ComplianceResult {
  bool Compliant = false;
  std::optional<ComplianceWitness> Witness;
  size_t ExploredStates = 0;
  /// Set when a governor stopped the product before a verdict was reached:
  /// Compliant is false but means "inconclusive", and there is no witness.
  /// (A witness found before the trip is conclusive; Exhausted stays
  /// empty then.)
  std::optional<ResourceExhausted> Exhausted;

  explicit operator bool() const { return Compliant; }
};

/// Checks H1 ⊢ H2 for two *contracts* via the product automaton (Thm. 1).
/// A non-null \p Gov bounds the product exploration; see
/// ComplianceResult::Exhausted.
ComplianceResult checkCompliance(hist::HistContext &Ctx,
                                 const hist::Expr *ClientContract,
                                 const hist::Expr *ServerContract,
                                 const ResourceGovernor *Gov = nullptr);

/// Projects both sides and checks Hc! ⊢ Hs! — the §4 procedure for a
/// client/request body against a candidate service.
ComplianceResult checkServiceCompliance(hist::HistContext &Ctx,
                                        const hist::Expr *Client,
                                        const hist::Expr *Server,
                                        const ResourceGovernor *Gov = nullptr);

/// Literal Def. 4 decision procedure over ready sets (no product
/// automaton); exposed for cross-validation.
bool checkComplianceDirect(hist::HistContext &Ctx,
                           const hist::Expr *ClientContract,
                           const hist::Expr *ServerContract);

} // namespace contract
} // namespace sus

#endif // SUS_CONTRACT_COMPLIANCE_H
