//===- contract/Prescreen.cpp - Cheap compliance pre-screens --------------===//

#include "contract/Prescreen.h"

#include "contract/Project.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

/// Collects every choice guard occurring anywhere in a contract. Nodes are
/// hash-consed, so a visited set makes the walk linear in *distinct*
/// subterms even when branches share continuations.
void collectAlphabet(const Expr *E, std::set<CommAction> &Out,
                     std::unordered_set<const Expr *> &Visited) {
  if (!E || !Visited.insert(E).second)
    return;
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
    return;
  case ExprKind::Mu:
    collectAlphabet(cast<MuExpr>(E)->body(), Out, Visited);
    return;
  case ExprKind::Seq:
    collectAlphabet(cast<SeqExpr>(E)->head(), Out, Visited);
    collectAlphabet(cast<SeqExpr>(E)->tail(), Out, Visited);
    return;
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches()) {
      Out.insert(B.Guard);
      collectAlphabet(B.Body, Out, Visited);
    }
    return;
  default:
    // Not in the contract fragment; the caller checked isContract first,
    // so this is unreachable — but stay conservative if it ever isn't.
    return;
  }
}

} // namespace

ContractSummary sus::contract::summarizeContract(HistContext &Ctx,
                                                 const Expr *E) {
  ContractSummary Summary;
  const Expr *Contract = project(Ctx, E);
  if (!isContract(Contract))
    return Summary; // Screenable stays false: "anything goes".
  Summary.Screenable = true;
  Summary.InitialSets = readySets(Contract);
  std::unordered_set<const Expr *> Visited;
  collectAlphabet(Contract, Summary.Alphabet, Visited);
  for (const ReadySet &S : Summary.InitialSets) {
    if (S.empty())
      continue;
    Summary.NeedsSync = true;
    if (Summary.IndexKey.empty() || S.size() < Summary.IndexKey.size())
      Summary.IndexKey = S;
  }
  return Summary;
}

PrescreenVerdict
sus::contract::prescreenCompliance(const ContractSummary &Client,
                                   const ContractSummary &Service) {
  if (!Client.Screenable || !Service.Screenable)
    return PrescreenVerdict::Pass;

  // Alphabet screen: with no dual action anywhere in the service, the
  // product has no synchronized step, so a client that must synchronize
  // (some non-empty ready set) is stuck by Def. 4 clause (1).
  if (Client.NeedsSync) {
    bool AnyDual = false;
    for (const CommAction &A : Client.Alphabet)
      if (Service.Alphabet.count(A.complement())) {
        AnyDual = true;
        break;
      }
    if (!AnyDual)
      return PrescreenVerdict::AlphabetReject;
  }

  // First-step screen: Def. 4 clause (1) at the initial state. One pair
  // (C ≠ ∅, S) with C ∩ S̄ = ∅ is a stuck state the product checker is
  // guaranteed to reach at its start.
  for (const ReadySet &C : Client.InitialSets) {
    if (C.empty())
      continue;
    for (const ReadySet &S : Service.InitialSets)
      if (!canSynchronize(C, S))
        return PrescreenVerdict::FirstStepReject;
  }
  return PrescreenVerdict::Pass;
}
