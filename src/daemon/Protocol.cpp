//===- daemon/Protocol.cpp - The susd wire protocol -----------------------===//

#include "daemon/Protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

using namespace sus;
using namespace sus::daemon;

namespace {

bool needsEscape(unsigned char C) {
  return C == '%' || C == ' ' || C == '=' || C < 0x20 || C == 0x7f;
}

int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

} // namespace

std::string daemon::escape(const std::string &S) {
  static const char *Hex = "0123456789abcdef";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (needsEscape(C)) {
      Out.push_back('%');
      Out.push_back(Hex[C >> 4]);
      Out.push_back(Hex[C & 0xf]);
    } else {
      Out.push_back(static_cast<char>(C));
    }
  }
  return Out;
}

bool daemon::unescape(const std::string &S, std::string &Out) {
  Out.clear();
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '%') {
      Out.push_back(S[I]);
      continue;
    }
    if (I + 2 >= S.size())
      return false; // Truncated escape ("%", "%a" at end of string).
    int Hi = hexDigit(S[I + 1]);
    int Lo = hexDigit(S[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<char>((Hi << 4) | Lo));
    I += 2;
  }
  return true;
}

std::string daemon::formatRequest(const Request &R) {
  std::string Line = "sus/1 " + escape(R.Verb);
  for (const auto &[K, V] : R.Params)
    Line += " " + escape(K) + "=" + escape(V);
  return Line;
}

bool daemon::parseRequest(const std::string &Line, Request &R,
                          std::string &Err) {
  if (Line.size() > MaxRequestLine) {
    Err = "request line exceeds " + std::to_string(MaxRequestLine) + " bytes";
    return false;
  }
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok)
    Tokens.push_back(Tok);
  if (Tokens.empty() || Tokens[0] != "sus/1") {
    Err = "request does not start with 'sus/1'";
    return false;
  }
  if (Tokens.size() < 2) {
    Err = "request has no verb";
    return false;
  }
  if (!unescape(Tokens[1], R.Verb)) {
    Err = "malformed escape in verb";
    return false;
  }
  R.Params.clear();
  for (size_t I = 2; I < Tokens.size(); ++I) {
    size_t Eq = Tokens[I].find('=');
    if (Eq == std::string::npos) {
      Err = "parameter '" + Tokens[I] + "' is not key=value";
      return false;
    }
    std::string Key, Value;
    if (!unescape(Tokens[I].substr(0, Eq), Key) ||
        !unescape(Tokens[I].substr(Eq + 1), Value)) {
      Err = "malformed escape in parameter '" + Tokens[I] + "'";
      return false;
    }
    if (!R.Params.emplace(Key, Value).second) {
      Err = "duplicate parameter '" + Key + "'";
      return false;
    }
  }
  return true;
}

std::string daemon::formatResponseHeader(const Response &R) {
  return "sus/1 " + std::to_string(R.Exit) + " " +
         std::to_string(R.Body.size());
}

bool daemon::parseResponseHeader(const std::string &Line, int &Exit,
                                 uint64_t &PayloadLen, std::string &Err) {
  std::istringstream In(Line);
  std::string Proto;
  long long ExitField = -1;
  unsigned long long Len = 0;
  if (!(In >> Proto >> ExitField >> Len) || Proto != "sus/1" ||
      ExitField < 0 || ExitField > 255) {
    Err = "malformed response header '" + Line + "'";
    return false;
  }
  std::string Trailing;
  if (In >> Trailing) {
    Err = "trailing tokens in response header";
    return false;
  }
  Exit = static_cast<int>(ExitField);
  PayloadLen = Len;
  return true;
}
