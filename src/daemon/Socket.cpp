//===- daemon/Socket.cpp - AF_UNIX plumbing for susd ----------------------===//

#include "daemon/Socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sus;
using namespace sus::daemon;

namespace {

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

int daemon::listenOn(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path '" + Path + "' is too long (max " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoMessage("socket");
    return -1;
  }
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. A *live*
  // daemon also loses its file this way — callers pick distinct paths.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = errnoMessage("bind");
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, /*backlog=*/64) < 0) {
    Err = errnoMessage("listen");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int daemon::acceptClient(int ListenFd, int TimeoutMs, std::string &Err) {
  pollfd P;
  P.fd = ListenFd;
  P.events = POLLIN;
  P.revents = 0;
  int N = ::poll(&P, 1, TimeoutMs);
  if (N == 0)
    return -1;
  if (N < 0) {
    if (errno == EINTR)
      return -1; // Treat a signal like a timeout: the loop re-polls.
    Err = errnoMessage("poll");
    return -2;
  }
  int Fd = ::accept(ListenFd, nullptr, nullptr);
  if (Fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED)
      return -1;
    Err = errnoMessage("accept");
    return -2;
  }
  return Fd;
}

int daemon::connectTo(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path '" + Path + "' is too long (max " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoMessage("socket");
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "cannot connect to '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool daemon::readLine(int Fd, std::string &Line, size_t MaxLen,
                      std::string &Err) {
  Line.clear();
  char C;
  while (true) {
    ssize_t N = ::read(Fd, &C, 1);
    if (N == 0) {
      Err = "connection closed before end of line";
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoMessage("read");
      return false;
    }
    if (C == '\n')
      return true;
    if (Line.size() >= MaxLen) {
      Err = "line exceeds " + std::to_string(MaxLen) + " bytes";
      return false;
    }
    Line.push_back(C);
  }
}

bool daemon::readExact(int Fd, size_t Len, std::string &Out,
                       std::string &Err) {
  Out.clear();
  Out.reserve(Len);
  char Buf[4096];
  while (Out.size() < Len) {
    size_t Want = std::min(sizeof(Buf), Len - Out.size());
    ssize_t N = ::read(Fd, Buf, Want);
    if (N == 0) {
      Err = "connection closed mid-payload (" + std::to_string(Out.size()) +
            " of " + std::to_string(Len) + " bytes)";
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoMessage("read");
      return false;
    }
    Out.append(Buf, static_cast<size_t>(N));
  }
  return true;
}

bool daemon::writeAll(int Fd, std::string_view Bytes, std::string &Err) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not
    // as a SIGPIPE that kills the whole daemon mid-service.
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoMessage("send");
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

void daemon::closeFd(int Fd) { ::close(Fd); }
