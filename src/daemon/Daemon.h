//===- daemon/Daemon.h - The resident verification engine -------*- C++ -*-===//
///
/// \file
/// susd's core: an Engine keeps one parsed .sus session resident — the
/// HistContext, repository, policy registry, shared VerifierCache,
/// ServiceIndex and a Verifier — and serves protocol requests against it,
/// so repeat verifications pay memo-table lookups instead of re-parsing
/// and re-exploring (DESIGN.md §13).
///
/// Concurrency model: connections are accepted on the main thread and
/// handed to a ThreadPool; each request then takes the Engine's session
/// lock for its whole handling. The HistContext is single-threaded by
/// design, so requests serialize at the engine while socket I/O overlaps;
/// parallelism *within* a verification comes from the Verifier's own
/// worker shards (--jobs).
///
/// Per-request resource governance: each request names a tenant and may
/// ask for its own deadline/budgets; the TenantBudgetTable min-combines
/// them and a fresh governor is armed on the resident verifier for just
/// that request (trips are Inconclusive exit 3, never cached).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_DAEMON_DAEMON_H
#define SUS_DAEMON_DAEMON_H

#include "core/Snapshot.h"
#include "core/Verifier.h"
#include "daemon/Protocol.h"
#include "support/Sync.h"
#include "support/TenantBudget.h"
#include "syntax/FileParser.h"

#include <atomic>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

namespace sus {
namespace daemon {

struct EngineOptions {
  unsigned Jobs = 1;
  bool UseIndex = true;
  TenantBudgetTable Tenants;
};

/// The resident session. Create once, then handle() any number of
/// requests (thread-safe; requests serialize on the session lock).
class Engine {
public:
  /// Parses \p Source and builds the resident verifier. Null (with a
  /// one-line diagnostic in \p Err) when the file does not parse.
  static std::unique_ptr<Engine> create(std::string Source,
                                        std::string FileName,
                                        EngineOptions Opts, std::string &Err);

  /// Serves one request. Never throws; unknown verbs and bad parameters
  /// come back as exit-2 responses.
  Response handle(const Request &R);

  /// Loads a snapshot into the resident cache (and warm-starts the index
  /// from its persisted summaries). False with a diagnostic on a corrupt,
  /// wrong-version or mismatched snapshot — the cache is left untouched.
  bool loadSnapshotBytes(const std::string &Bytes, std::string &Err,
                         core::SnapshotStats *Stats = nullptr);

  /// Serializes the resident cache (building the index first if needed).
  std::string saveSnapshotBytes(core::SnapshotStats *Stats = nullptr);

  /// Verifies every client (the susc verify loop), warming the memo
  /// tables. Returns the susc exit code (0/1/3).
  int warmAll(std::ostream &OS);

  /// True once a shutdown request was served: the accept loop exits.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

private:
  Engine(EngineOptions Opts) : Opts(std::move(Opts)) {}

  Response verify(const Request &R) SUS_REQUIRES(M);
  Response lint(const Request &R) SUS_REQUIRES(M);
  Response churn(const Request &R) SUS_REQUIRES(M);
  Response snapshot(const Request &R) SUS_REQUIRES(M);
  Response stats(const Request &R) SUS_REQUIRES(M);

  /// Arms the per-request governor (tenant budget min request override)
  /// on the resident verifier; the returned guard disarms it. Returns
  /// false (exit-2 response in \p Resp) on malformed numeric parameters.
  bool armGovernor(const Request &R, Response &Resp) SUS_REQUIRES(M);

  /// Verifies one client into \p OS; the shared worker behind verify()
  /// and warmAll(). Updates \p AllOk / \p AnyInconclusive.
  void verifyClient(Symbol Name, const hist::Expr *Client,
                    const std::string &OnlyPlan, bool Enumerate,
                    std::ostream &OS, bool &AllOk, bool &AnyInconclusive)
      SUS_REQUIRES(M);

  EngineOptions Opts;
  std::atomic<bool> Shutdown{false};

  /// Session lock: the HistContext (and everything interned in it) is
  /// single-threaded, so one request at a time touches the engine.
  Mutex M;
  std::string Source SUS_GUARDED_BY(M);
  std::string FileName SUS_GUARDED_BY(M);
  hist::HistContext Ctx SUS_GUARDED_BY(M);
  std::optional<syntax::SusFile> File SUS_GUARDED_BY(M);
  std::shared_ptr<core::VerifierCache> Cache SUS_GUARDED_BY(M);
  std::unique_ptr<core::Verifier> V SUS_GUARDED_BY(M);
};

struct ServeOptions {
  std::string SocketPath;
  unsigned Workers = 2; ///< Connection-handling threads.
  std::ostream *Log = nullptr;
};

/// Binds \p Path and serves requests until a shutdown request arrives.
/// Returns 0 on clean shutdown, 2 when the socket cannot be bound.
int serve(Engine &E, const ServeOptions &Opts);

} // namespace daemon
} // namespace sus

#endif // SUS_DAEMON_DAEMON_H
