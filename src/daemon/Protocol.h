//===- daemon/Protocol.h - The susd wire protocol ---------------*- C++ -*-===//
///
/// \file
/// The line-oriented request/response protocol between susd and
/// `susc --connect`. Deliberately trivial — one request line, one
/// response header line, one opaque payload — so a client is a few
/// dozen lines in any language and the daemon never parses attacker-
/// shaped framing with more state than a split-on-space.
///
/// Request:   `sus/1 <verb> [key=value]...\n`
/// Response:  `sus/1 <exit> <payload-bytes>\n` followed by exactly that
///            many payload bytes (the tool output; exit is the code the
///            client should exit with, same contract as plain susc).
///
/// Keys and values are percent-escaped (%XX for '%', ' ', '=', and
/// control bytes including newline), so arbitrary strings survive the
/// space/equals framing. A request line is capped at 64 KiB — longer
/// lines are a protocol error, not an allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_DAEMON_PROTOCOL_H
#define SUS_DAEMON_PROTOCOL_H

#include <cstdint>
#include <map>
#include <string>

namespace sus {
namespace daemon {

/// Cap on one request line (framing included). Far above any real
/// request, low enough that a hostile peer cannot balloon the daemon.
constexpr size_t MaxRequestLine = 64 * 1024;

/// A parsed request: a verb plus string parameters.
struct Request {
  std::string Verb;
  std::map<std::string, std::string> Params;

  /// The value of \p Key, or \p Default when absent.
  std::string param(const std::string &Key,
                    const std::string &Default = "") const {
    auto It = Params.find(Key);
    return It == Params.end() ? Default : It->second;
  }
  bool has(const std::string &Key) const { return Params.count(Key) != 0; }
};

/// A response: the exit code the client should propagate plus the tool
/// output to print.
struct Response {
  int Exit = 0;
  std::string Body;
};

/// Percent-escapes '%', ' ', '=' and control bytes (so tokens survive
/// the space framing and values the '=' split).
std::string escape(const std::string &S);

/// Reverses escape(). Malformed escapes (truncated or non-hex) fail.
bool unescape(const std::string &S, std::string &Out);

/// Renders a request line (without the trailing newline).
std::string formatRequest(const Request &R);

/// Parses a request line (no trailing newline). On failure \p Err holds
/// a one-line diagnostic.
bool parseRequest(const std::string &Line, Request &R, std::string &Err);

/// Renders the response header line (without the payload).
std::string formatResponseHeader(const Response &R);

/// Parses a response header line; \p PayloadLen receives the byte count
/// that follows on the wire.
bool parseResponseHeader(const std::string &Line, int &Exit,
                         uint64_t &PayloadLen, std::string &Err);

} // namespace daemon
} // namespace sus

#endif // SUS_DAEMON_PROTOCOL_H
