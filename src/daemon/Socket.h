//===- daemon/Socket.h - AF_UNIX plumbing for susd --------------*- C++ -*-===//
///
/// \file
/// Thin blocking AF_UNIX helpers shared by the daemon and the
/// `susc --connect` client: listen/accept with a poll()-based timeout
/// (so the daemon's accept loop can notice a shutdown flag), connect,
/// line-delimited reads with a hard cap, and write-all. Every function
/// reports failure through an errno-derived message instead of printing,
/// so callers own the diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_DAEMON_SOCKET_H
#define SUS_DAEMON_SOCKET_H

#include <string>
#include <string_view>

namespace sus {
namespace daemon {

/// Creates, binds and listens on an AF_UNIX socket at \p Path (removing
/// a stale socket file first). Returns the listening fd, or -1 with a
/// diagnostic in \p Err. sun_path is finite: overlong paths are rejected
/// up front with a clear message.
int listenOn(const std::string &Path, std::string &Err);

/// Waits up to \p TimeoutMs for a connection. Returns the accepted fd,
/// -1 on timeout, -2 on a hard error (in \p Err).
int acceptClient(int ListenFd, int TimeoutMs, std::string &Err);

/// Connects to the daemon at \p Path. Returns the fd, or -1 with a
/// diagnostic in \p Err.
int connectTo(const std::string &Path, std::string &Err);

/// Reads bytes up to and including '\n' (stripped from \p Line), capped
/// at \p MaxLen. False on EOF-before-newline, overflow, or error.
bool readLine(int Fd, std::string &Line, size_t MaxLen, std::string &Err);

/// Reads exactly \p Len bytes into \p Out. False on short read.
bool readExact(int Fd, size_t Len, std::string &Out, std::string &Err);

/// Writes all of \p Bytes. False on error (e.g. peer hung up).
bool writeAll(int Fd, std::string_view Bytes, std::string &Err);

/// close() wrapper (keeps <unistd.h> out of callers).
void closeFd(int Fd);

} // namespace daemon
} // namespace sus

#endif // SUS_DAEMON_SOCKET_H
