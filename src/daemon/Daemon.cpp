//===- daemon/Daemon.cpp - The resident verification engine ---------------===//

#include "daemon/Daemon.h"

#include "analysis/Lint.h"
#include "core/Repair.h"
#include "daemon/Socket.h"
#include "plan/RepositoryDelta.h"
#include "plan/ServiceIndex.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace sus;
using namespace sus::daemon;

namespace {

Response errorResponse(const std::string &Msg) {
  Response Resp;
  Resp.Exit = 2;
  Resp.Body = "susd: " + Msg + "\n";
  return Resp;
}

/// Digits-only non-negative integer parameter (the susc count-flag
/// discipline: no signs, no silent wrapping).
bool parseCountParam(const std::string &Key, const std::string &Value,
                     uint64_t &Out, std::string &Err) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    Err = "parameter '" + Key + "' expects a non-negative integer, got '" +
          Value + "'";
    return false;
  }
  errno = 0;
  unsigned long long N = std::strtoull(Value.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    Err = "parameter '" + Key + "' value '" + Value + "' is out of range";
    return false;
  }
  Out = N;
  return true;
}

int64_t percentileUs(std::vector<int64_t> Sorted, size_t Pct) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  return Sorted[std::min(Sorted.size() - 1, Sorted.size() * Pct / 100)];
}

} // namespace

std::unique_ptr<Engine> Engine::create(std::string Source,
                                       std::string FileName,
                                       EngineOptions Opts, std::string &Err) {
  std::unique_ptr<Engine> E(new Engine(std::move(Opts)));
  MutexLock Lock(E->M);
  E->Source = std::move(Source);
  E->FileName = std::move(FileName);

  DiagnosticEngine Diags;
  E->File = syntax::parseSusFile(E->Ctx, E->Source, Diags, E->FileName);
  if (!E->File) {
    std::ostringstream OS;
    Diags.print(OS, DiagFormat::Text);
    Err = OS.str();
    if (Err.empty())
      Err = "cannot parse '" + E->FileName + "'";
    return nullptr;
  }

  core::VerifierOptions VOpts;
  VOpts.Jobs = E->Opts.Jobs;
  VOpts.UseIndex = E->Opts.UseIndex;
  E->Cache = std::make_shared<core::VerifierCache>();
  E->V = std::make_unique<core::Verifier>(E->Ctx, E->File->Repo,
                                          E->File->Registry, VOpts, E->Cache);
  return E;
}

bool Engine::loadSnapshotBytes(const std::string &Bytes, std::string &Err,
                               core::SnapshotStats *Stats) {
  MutexLock Lock(M);
  core::SnapshotLoadResult R =
      core::loadSnapshot(Bytes, Ctx, File->Repo, *Cache);
  if (!R.Ok) {
    Err = R.Error;
    return false;
  }
  if (Stats)
    *Stats = R.Stats;
  if (Opts.UseIndex && !R.IndexEntries.empty())
    V->adoptIndex(std::make_unique<plan::ServiceIndex>(Ctx, File->Repo,
                                                       R.IndexEntries));
  return true;
}

std::string Engine::saveSnapshotBytes(core::SnapshotStats *Stats) {
  MutexLock Lock(M);
  return core::saveSnapshot(Ctx, File->Repo, *Cache, V->index(), Stats);
}

int Engine::warmAll(std::ostream &OS) {
  MutexLock Lock(M);
  bool AllOk = true, AnyInconclusive = false;
  for (const auto &[Name, Client] : File->Clients)
    verifyClient(Name, Client, /*OnlyPlan=*/"", /*Enumerate=*/true, OS, AllOk,
                 AnyInconclusive);
  if (AnyInconclusive)
    return 3;
  return AllOk ? 0 : 1;
}

Response Engine::handle(const Request &R) {
  MutexLock Lock(M);
  Response Resp;

  if (R.Verb == "ping") {
    Resp.Body = "pong\n";
    return Resp;
  }
  if (R.Verb == "shutdown") {
    Shutdown.store(true, std::memory_order_relaxed);
    Resp.Body = "bye\n";
    return Resp;
  }
  if (R.Verb == "stats")
    return stats(R);
  if (R.Verb == "snapshot")
    return snapshot(R);

  if (R.Verb == "verify" || R.Verb == "lint" || R.Verb == "churn") {
    if (!armGovernor(R, Resp))
      return Resp;
    if (R.Verb == "verify")
      Resp = verify(R);
    else if (R.Verb == "lint")
      Resp = lint(R);
    else
      Resp = churn(R);
    V->setGovernor(nullptr); // Disarm: the next request re-arms its own.
    return Resp;
  }

  return errorResponse("unknown verb '" + R.Verb +
                       "' (valid: ping, stats, verify, lint, churn, "
                       "snapshot, shutdown)");
}

bool Engine::armGovernor(const Request &R, Response &Resp) {
  TenantBudget Override;
  std::string Err;
  if (R.has("deadline_ms") &&
      !parseCountParam("deadline_ms", R.param("deadline_ms"),
                       Override.DeadlineMs, Err)) {
    Resp = errorResponse(Err);
    return false;
  }
  if (R.has("max_product_states") &&
      !parseCountParam("max_product_states", R.param("max_product_states"),
                       Override.MaxProductStates, Err)) {
    Resp = errorResponse(Err);
    return false;
  }
  if (R.has("max_subset_states") &&
      !parseCountParam("max_subset_states", R.param("max_subset_states"),
                       Override.MaxSubsetStates, Err)) {
    Resp = errorResponse(Err);
    return false;
  }
  V->setGovernor(
      Opts.Tenants.governorFor(R.param("tenant", "*"), Override));
  return true;
}

void Engine::verifyClient(Symbol Name, const hist::Expr *Client,
                          const std::string &OnlyPlan, bool Enumerate,
                          std::ostream &OS, bool &AllOk,
                          bool &AnyInconclusive) {
  // Mirrors the susc verify loop byte for byte (tests diff the two).
  std::string ClientName(Ctx.interner().text(Name));
  OS << "== client " << ClientName << " ==\n";

  bool HasValid = false;

  for (const syntax::PlanDecl &Decl : File->Plans) {
    if (Decl.Client != Name)
      continue;
    std::string PlanName(Ctx.interner().text(Decl.Name));
    if (!OnlyPlan.empty() && PlanName != OnlyPlan)
      continue;
    core::PlanVerdict Verdict = V->checkPlan(Client, Name, Decl.Pi);
    OS << "plan " << PlanName << " " << Decl.Pi.str(Ctx.interner()) << ": ";
    if (Verdict.inconclusive()) {
      std::optional<ResourceExhausted> E = Verdict.exhaustedReason();
      OS << "Inconclusive(resource: "
         << (E ? resourceKindName(E->Which) : "unknown") << ")\n";
      AnyInconclusive = true;
      continue;
    }
    OS << (Verdict.isValid() ? "VALID" : "invalid") << "\n";
    for (const core::RequestCheck &C : Verdict.RequestChecks)
      if (!C.Compliant && !C.Exhausted) {
        OS << "  request " << C.Request << ": not compliant";
        if (C.Witness)
          OS << " (" << C.Witness->str(Ctx) << ")";
        OS << "\n";
      }
    if (!Verdict.Security.Valid &&
        Verdict.Security.Failure != validity::PlanFailureKind::None &&
        Verdict.Security.Failure !=
            validity::PlanFailureKind::ResourceExhausted) {
      OS << "  security: failed";
      if (Verdict.Security.Policy)
        OS << " (policy " << Verdict.Security.Policy->str(Ctx.interner())
           << ")";
      if (!Verdict.Security.Trace.empty()) {
        OS << " via";
        for (const std::string &L : Verdict.Security.Trace)
          OS << " " << L;
      }
      OS << "\n";
    }
    if (Verdict.isValid())
      HasValid = true;
  }

  if (Enumerate && OnlyPlan.empty()) {
    core::VerificationReport Report = V->verifyClient(Client, Name);
    core::printReport(Report, Ctx, OS);
    if (Report.anyInconclusive())
      AnyInconclusive = true;
    if (!Report.validPlans().empty())
      HasValid = true;
  }

  if (!HasValid)
    AllOk = false;
}

Response Engine::verify(const Request &R) {
  Response Resp;
  std::ostringstream OS;
  bool AllOk = true, AnyInconclusive = false;
  std::string OnlyPlan = R.param("plan");
  bool Enumerate = R.param("enumerate", "1") != "0";

  std::string Only = R.param("client");
  if (!Only.empty()) {
    Symbol Name = Ctx.interner().lookup(Only);
    const hist::Expr *Client = Name.isValid() ? File->findClient(Name)
                                              : nullptr;
    if (!Client)
      return errorResponse("no client named '" + Only + "'");
    verifyClient(Name, Client, OnlyPlan, Enumerate, OS, AllOk,
                 AnyInconclusive);
  } else {
    for (const auto &[Name, Client] : File->Clients)
      verifyClient(Name, Client, OnlyPlan, Enumerate, OS, AllOk,
                   AnyInconclusive);
  }

  Resp.Body = OS.str();
  Resp.Exit = AnyInconclusive ? 3 : (AllOk ? 0 : 1);
  return Resp;
}

Response Engine::lint(const Request &R) {
  (void)R;
  Response Resp;
  std::ostringstream OS;
  DiagnosticEngine Diags;
  // LintContext stores a reference to its options — keep them alive for
  // the whole run.
  analysis::LintOptions LOpts;
  analysis::LintContext LC(Ctx, *File, FileName, LOpts, Diags);
  unsigned Findings = analysis::runLintPasses(LC);
  Diags.print(OS, DiagFormat::Text);
  OS << FileName << ": " << Findings << " finding(s)\n";
  Resp.Body = OS.str();
  Resp.Exit = Findings ? 1 : 0;
  return Resp;
}

Response Engine::churn(const Request &R) {
  uint64_t Rounds = 1, Seed = 1;
  std::string Err;
  if ((R.has("rounds") &&
       !parseCountParam("rounds", R.param("rounds"), Rounds, Err)) ||
      (R.has("seed") && !parseCountParam("seed", R.param("seed"), Seed, Err)))
    return errorResponse(Err);
  if (Rounds == 0)
    return errorResponse("parameter 'rounds' must be at least 1");

  std::vector<plan::Loc> Locs = File->Repo.locations();
  if (Locs.empty())
    return errorResponse("churn needs a non-empty repository");

  Response Resp;
  std::ostringstream OS;
  bool AllOk = true, AnyInconclusive = false;

  // The same deterministic LCG as `susc plan --churn`, so a daemon churn
  // replay is comparable to the CLI one.
  uint64_t Rng = Seed;
  auto NextRand = [&Rng]() {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };

  for (const auto &[Name, Client] : File->Clients) {
    OS << "== client " << Ctx.interner().text(Name) << " ==\n";
    core::RepairSession Session(*V, Client, Name);
    const core::VerificationReport &Baseline = Session.verify();
    OS << "valid plans: " << Baseline.validPlans().size() << "\n";

    size_t Kept = 0, Dropped = 0, Reverified = 0, Repairs = 0;
    std::vector<int64_t> LatenciesUs;
    bool Tripped = false;
    for (uint64_t Round = 0; Round < Rounds && !Tripped; ++Round) {
      plan::Loc L = Locs[NextRand() % Locs.size()];
      const hist::Expr *Service = File->Repo.find(L);
      unsigned Capacity = File->Repo.capacity(L);
      for (int Phase = 0; Phase < 2; ++Phase) {
        plan::RepositoryDelta Delta;
        Delta.Changes.push_back(
            Phase == 0
                ? plan::applyRemove(File->Repo, L)
                : plan::applyPublish(File->Repo, L, Service, Capacity));
        auto Start = std::chrono::steady_clock::now();
        Outcome<core::RepairStats> Repair = Session.applyDelta(Delta);
        auto End = std::chrono::steady_clock::now();
        LatenciesUs.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
                .count());
        ++Repairs;
        if (!Repair.ok()) {
          OS << "churn: round " << Round << " Inconclusive(resource: "
             << resourceKindName(Repair.exhausted().Which) << ")\n";
          AnyInconclusive = true;
          Tripped = true;
          break;
        }
        Kept += Repair.value().PlansKept;
        Dropped += Repair.value().PlansDropped;
        Reverified += Repair.value().PlansReverified;
      }
    }
    OS << "churn: " << Repairs << " repairs over " << Rounds
       << " round(s), plans kept " << Kept << ", dropped " << Dropped
       << ", reverified " << Reverified << "\n";
    OS << "repair latency: p50 " << percentileUs(LatenciesUs, 50)
       << " us, p99 " << percentileUs(LatenciesUs, 99) << " us\n";
    const core::VerificationReport &Final = Session.report();
    OS << "valid plans after churn: " << Final.validPlans().size() << "\n";
    if (Final.anyInconclusive())
      AnyInconclusive = true;
    if (Final.validPlans().empty())
      AllOk = false;
  }

  Resp.Body = OS.str();
  Resp.Exit = AnyInconclusive ? 3 : (AllOk ? 0 : 1);
  return Resp;
}

Response Engine::snapshot(const Request &R) {
  std::string Path = R.param("file");
  if (Path.empty())
    return errorResponse("snapshot needs file=PATH");
  core::SnapshotStats Stats;
  std::string Bytes = core::saveSnapshot(Ctx, File->Repo, *Cache, V->index(),
                                         &Stats);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out || !Out.write(Bytes.data(), static_cast<std::streamsize>(
                                           Bytes.size())))
    return errorResponse("cannot write snapshot to '" + Path + "'");
  Out.close();
  if (!Out.good())
    return errorResponse("error writing snapshot to '" + Path + "'");

  Response Resp;
  std::ostringstream OS;
  OS << "snapshot: " << Stats.Bytes << " bytes to '" << Path << "' ("
     << Stats.Projections << " projections, " << Stats.Compliances
     << " compliances, " << Stats.Validities << " validities, "
     << Stats.IndexEntries << " index entries, " << Stats.FusedMonitors
     << " fused monitors)\n";
  Resp.Body = OS.str();
  return Resp;
}

Response Engine::stats(const Request &R) {
  (void)R;
  Response Resp;
  std::ostringstream OS;
  core::VerifierStats S = V->stats();
  OS << "cache: compliance " << S.ComplianceHits << "/" << S.ComplianceLookups
     << " hits, projection " << S.ProjectionHits << "/" << S.ProjectionLookups
     << " hits, validity " << S.ValidityHits << "/" << S.ValidityLookups
     << " hits\n";
  monitor::FusedCache::Stats F = Cache->fusedMonitors().stats();
  OS << "fused: " << F.Fusions << " fusions, " << F.Hits << "/" << F.Lookups
     << " hits, " << F.Refusals << " refusals\n";
  if (const plan::ServiceIndex *Index = V->index()) {
    plan::IndexStats IStats = Index->stats();
    OS << "index: " << Index->size() << " services, " << IStats.Lookups
       << " lookups (" << IStats.Hits << " memo hits)\n";
  }
  OS << "repository: " << File->Repo.size() << " services, "
     << File->Clients.size() << " clients\n";
  Resp.Body = OS.str();
  return Resp;
}

//===----------------------------------------------------------------------===//
// The accept loop
//===----------------------------------------------------------------------===//

namespace {

/// Serves one connection end to end: one request line in, one response
/// out. Runs on a pool worker; Engine::handle serializes internally.
void serveConnection(Engine &E, int Fd) {
  std::string Err;
  std::string Line;
  Response Resp;
  if (!readLine(Fd, Line, MaxRequestLine, Err)) {
    Resp = errorResponse(Err);
  } else {
    Request Req;
    if (!parseRequest(Line, Req, Err))
      Resp = errorResponse(Err);
    else
      Resp = E.handle(Req);
  }
  std::string Wire = formatResponseHeader(Resp) + "\n" + Resp.Body;
  std::string WriteErr;
  (void)writeAll(Fd, Wire, WriteErr); // Peer may hang up; nothing to do.
  closeFd(Fd);
}

} // namespace

int daemon::serve(Engine &E, const ServeOptions &Opts) {
  std::ostream &Log = Opts.Log ? *Opts.Log : std::cerr;
  std::string Err;
  int ListenFd = listenOn(Opts.SocketPath, Err);
  if (ListenFd < 0) {
    Log << "susd: " << Err << "\n";
    return 2;
  }
  Log << "susd: listening on " << Opts.SocketPath << "\n";
  Log.flush();

  {
    ThreadPool Pool(std::max(1u, Opts.Workers));
    while (!E.shutdownRequested()) {
      int Fd = acceptClient(ListenFd, /*TimeoutMs=*/200, Err);
      if (Fd == -2) {
        Log << "susd: " << Err << "\n";
        break;
      }
      if (Fd < 0)
        continue; // Timeout: re-check the shutdown flag.
      Pool.submit([&E, Fd](unsigned) { serveConnection(E, Fd); });
    }
    // Pool destructor drains in-flight connections before we unlink.
  }

  closeFd(ListenFd);
  std::remove(Opts.SocketPath.c_str());
  Log << "susd: shut down\n";
  return 0;
}
