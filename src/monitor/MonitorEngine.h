//===- monitor/MonitorEngine.h - Sharded many-session monitor ---*- C++ -*-===//
///
/// \file
/// Runs many concurrent sessions against fused policy DFAs, sharded over
/// the work-stealing ThreadPool. Sessions whose policy set fuses get the
/// single-integer fast path (SessionMonitor); sessions whose fusion trips
/// the ResourceGovernor (product blow-up, > 32 policies) transparently
/// fall back to the legacy policy::ValidityChecker — an Inconclusive
/// fusion never produces a wrong verdict, only a slower one.
///
/// Batched ingestion (`ingest`) partitions a label batch by
/// `session % shards`: each shard task consumes its sessions' labels in
/// batch order, so per-session label order is preserved while distinct
/// sessions advance in parallel. Decisions are written at disjoint
/// indices, so the result is deterministic and identical to sequential
/// processing.
///
/// Closure contract: every event a session can fire must be inside the
/// universe its session was opened with (see Fused.h). Out-of-universe
/// events are admitted with a self-loop in release builds (blocking could
/// be a wrong verdict) and counted under "monitor.unknown_events".
///
//===----------------------------------------------------------------------===//

#ifndef SUS_MONITOR_MONITORENGINE_H
#define SUS_MONITOR_MONITORENGINE_H

#include "monitor/Fused.h"
#include "monitor/SessionMonitor.h"
#include "policy/Validity.h"
#include "support/ThreadPool.h"

#include <memory>
#include <optional>
#include <vector>

namespace sus {
namespace monitor {

/// Monitors many sessions, each against its own fused policy set.
class MonitorEngine {
public:
  struct Options {
    /// Shard width for batched ingestion; 0 = ThreadPool::defaultWorkers().
    /// 1 keeps everything on the calling thread (no pool is spawned).
    unsigned Workers = 1;

    /// Governs fusion (not the per-event hot path, which is O(1)).
    const ResourceGovernor *Gov = nullptr;

    /// Optional shared fused-DFA cache (e.g. core::VerifierCache's);
    /// null = fuse privately per distinct fingerprint.
    FusedCache *Cache = nullptr;

    /// Product-state cap per fusion, governor or not.
    uint64_t MaxFusedStates = 1u << 20;
  };

  using SessionId = uint32_t;

  /// One label addressed to one session inside a batch.
  struct BatchItem {
    SessionId Session;
    hist::Label L;
  };

  MonitorEngine(const policy::PolicyRegistry &Registry,
                const StringInterner &Interner, Options Opts);
  MonitorEngine(const policy::PolicyRegistry &Registry,
                const StringInterner &Interner)
      : MonitorEngine(Registry, Interner, Options()) {}
  ~MonitorEngine();

  MonitorEngine(const MonitorEngine &) = delete;
  MonitorEngine &operator=(const MonitorEngine &) = delete;

  /// Opens a session whose policies are \p Refs over event universe
  /// \p Universe (the closure contract above). Fuses — via the shared
  /// cache when configured — or falls back to a legacy checker when
  /// fusion is refused. Returns the new session's id.
  SessionId openSession(std::vector<hist::PolicyRef> Refs,
                        std::vector<hist::Event> Universe);

  size_t numSessions() const { return Sessions.size(); }

  /// True when \p S runs on the fused fast path (false = legacy fallback).
  bool isFused(SessionId S) const { return Sessions[S].Fused.has_value(); }

  /// True once some label violated \p S's policies (violations latch).
  bool isViolated(SessionId S) const;

  /// Would appending \p L keep session \p S valid? (No state change.)
  bool wouldAdmit(SessionId S, const hist::Label &L) const;

  /// Appends \p L to session \p S; returns false when the session is
  /// (now) violated.
  bool advance(SessionId S, const hist::Label &L);

  /// Processes \p Batch, sharding sessions across the pool. When
  /// \p Decisions is non-null it is resized to the batch size and
  /// Decisions[i] is set to 1 iff item i left its session valid (the
  /// value advance() would have returned). Blocks until the whole batch
  /// is processed; per-session order follows batch order.
  void ingest(const std::vector<BatchItem> &Batch,
              std::vector<uint8_t> *Decisions = nullptr);

  struct Stats {
    uint64_t Sessions = 0;        ///< openSession calls.
    uint64_t FusedSessions = 0;   ///< ... that run the fused fast path.
    uint64_t Events = 0;          ///< Labels processed (advance + ingest).
    uint64_t Blocked = 0;         ///< ... that reported a violation.
    uint64_t UnknownEvents = 0;   ///< Out-of-universe events admitted.
  };
  Stats stats() const { return S; }

private:
  struct Session {
    /// Keeps the fused DFA alive (sessions may outlive cache entries).
    std::shared_ptr<const FusedPolicyAutomaton> FusedDfa;
    std::optional<SessionMonitor> Fused;
    /// Legacy fallback when fusion was refused.
    std::optional<policy::ValidityChecker> Legacy;
  };

  /// advance() body without stats accounting (shared with ingest shards).
  bool advanceImpl(Session &Sess, const hist::Label &L, uint64_t &Unknown);

  // Concurrency discipline (DESIGN.md §11): the engine is externally
  // synchronized — one thread calls its methods — and ingest() is the
  // only internal fan-out. Its shard tasks partition work by
  // `session % Shards`, so each Session element is touched by exactly
  // one worker, results land at disjoint Decisions indices, and each
  // shard accumulates private counters that the calling thread merges
  // into S only after Pool->waitIdle() — confinement, not locks, is the
  // safety argument, and the pool's join edge is the publication point.
  // No engine state needs a guard; the shared FusedCache locks itself.
  const policy::PolicyRegistry &Registry;
  const StringInterner &Interner;
  Options Opts;
  unsigned Shards; ///< Resolved shard count (>= 1).
  std::unique_ptr<ThreadPool> Pool; ///< Null when Shards == 1.
  FusedCache PrivateCache;          ///< Used when Opts.Cache is null.
  std::vector<Session> Sessions;    ///< Sharded by index during ingest().
  Stats S;                          ///< Calling thread only.
};

} // namespace monitor
} // namespace sus

#endif // SUS_MONITOR_MONITORENGINE_H
