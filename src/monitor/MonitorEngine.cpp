//===- monitor/MonitorEngine.cpp - Sharded many-session monitor -----------===//

#include "monitor/MonitorEngine.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <array>
#include <cassert>

namespace sus {
namespace monitor {

namespace {
metrics::Counter &sessionsCounter() {
  static metrics::Counter &C = metrics::counter("monitor.sessions");
  return C;
}
metrics::Counter &eventsCounter() {
  static metrics::Counter &C = metrics::counter("monitor.events");
  return C;
}
metrics::Counter &blockedCounter() {
  static metrics::Counter &C = metrics::counter("monitor.blocked");
  return C;
}
metrics::Counter &unknownCounter() {
  static metrics::Counter &C = metrics::counter("monitor.unknown_events");
  return C;
}
} // namespace

MonitorEngine::MonitorEngine(const policy::PolicyRegistry &Registry,
                             const StringInterner &Interner, Options Opts)
    : Registry(Registry), Interner(Interner), Opts(Opts),
      Shards(Opts.Workers == 0 ? ThreadPool::defaultWorkers() : Opts.Workers) {
  if (Shards > 1)
    Pool = std::make_unique<ThreadPool>(Shards);
}

MonitorEngine::~MonitorEngine() = default;

MonitorEngine::SessionId
MonitorEngine::openSession(std::vector<hist::PolicyRef> Refs,
                           std::vector<hist::Event> Universe) {
  FusedCache &Cache = Opts.Cache ? *Opts.Cache : PrivateCache;
  FuseOptions FO;
  FO.Gov = Opts.Gov;
  FO.MaxStates = Opts.MaxFusedStates;

  Session Sess;
  Sess.FusedDfa =
      Cache.fuse(Registry, Interner, std::move(Refs), std::move(Universe), FO);
  if (Sess.FusedDfa) {
    Sess.Fused.emplace(*Sess.FusedDfa);
    ++S.FusedSessions;
  } else {
    // Fusion refused (governor / width): the session still gets a sound
    // monitor, just the O(#policies) legacy one.
    Sess.Legacy.emplace(Registry, Interner);
  }
  Sessions.push_back(std::move(Sess));
  ++S.Sessions;
  if (metrics::enabled())
    sessionsCounter().add();
  return static_cast<SessionId>(Sessions.size() - 1);
}

bool MonitorEngine::isViolated(SessionId Id) const {
  const Session &Sess = Sessions[Id];
  return Sess.Fused ? Sess.Fused->isViolated() : !Sess.Legacy->isValid();
}

bool MonitorEngine::wouldAdmit(SessionId Id, const hist::Label &L) const {
  const Session &Sess = Sessions[Id];
  return Sess.Fused ? Sess.Fused->wouldAdmit(L)
                    : Sess.Legacy->wouldRemainValid(L);
}

bool MonitorEngine::advanceImpl(Session &Sess, const hist::Label &L,
                                uint64_t &Unknown) {
  if (Sess.Fused) {
    if (L.isEvent() && Sess.FusedDfa->eventIndexOf(L.asEvent()) ==
                           FusedPolicyAutomaton::NoEvent)
      ++Unknown; // Admitted as a self-loop; see the closure contract.
    return Sess.Fused->advance(L);
  }
  return Sess.Legacy->append(L);
}

bool MonitorEngine::advance(SessionId Id, const hist::Label &L) {
  uint64_t Unknown = 0;
  bool Valid = advanceImpl(Sessions[Id], L, Unknown);
  ++S.Events;
  S.Blocked += Valid ? 0 : 1;
  S.UnknownEvents += Unknown;
  if (metrics::enabled()) {
    eventsCounter().add();
    if (!Valid)
      blockedCounter().add();
    if (Unknown)
      unknownCounter().add(Unknown);
  }
  return Valid;
}

void MonitorEngine::ingest(const std::vector<BatchItem> &Batch,
                           std::vector<uint8_t> *Decisions) {
  trace::Span Span("monitor.ingest", "monitor");
  Span.count("items", static_cast<int64_t>(Batch.size()));
  if (Decisions)
    Decisions->assign(Batch.size(), 0);

  // {events, blocked, unknown} per shard, merged after the barrier.
  std::vector<std::array<uint64_t, 3>> Local(Shards, {0, 0, 0});

  auto RunShard = [&](unsigned Shard) {
    std::array<uint64_t, 3> &Acc = Local[Shard];
    for (size_t I = 0; I != Batch.size(); ++I) {
      const BatchItem &Item = Batch[I];
      if (Item.Session % Shards != Shard)
        continue;
      assert(Item.Session < Sessions.size() && "unopened session in batch");
      bool Valid = advanceImpl(Sessions[Item.Session], Item.L, Acc[2]);
      ++Acc[0];
      Acc[1] += Valid ? 0 : 1;
      if (Decisions)
        (*Decisions)[I] = Valid ? 1 : 0;
    }
  };

  if (Pool) {
    for (unsigned Shard = 0; Shard != Shards; ++Shard)
      // Work stealing may execute this on any worker; the shard id must
      // come from the capture, not the executing WorkerId.
      Pool->submit([&RunShard, Shard](unsigned) { RunShard(Shard); });
    Pool->waitIdle();
  } else {
    RunShard(0);
  }

  uint64_t Events = 0, Blocked = 0, Unknown = 0;
  for (const std::array<uint64_t, 3> &Acc : Local) {
    Events += Acc[0];
    Blocked += Acc[1];
    Unknown += Acc[2];
  }
  S.Events += Events;
  S.Blocked += Blocked;
  S.UnknownEvents += Unknown;
  if (metrics::enabled()) {
    eventsCounter().add(Events);
    if (Blocked)
      blockedCounter().add(Blocked);
    if (Unknown)
      unknownCounter().add(Unknown);
  }
  Span.count("blocked", static_cast<int64_t>(Blocked));
}

} // namespace monitor
} // namespace sus
