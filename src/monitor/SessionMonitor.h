//===- monitor/SessionMonitor.h - One session's fused monitor ---*- C++ -*-===//
///
/// \file
/// The per-session view of a FusedPolicyAutomaton: one DFA state integer,
/// one active-policy bitmask, and (off the hot path) small per-policy
/// frame-nesting counters. The event hot path is `admitsEventIndex` /
/// `advanceEventIndex` — one branch-free table load plus one mask AND.
///
/// Semantics mirror policy::ValidityChecker exactly (§3.1 validity):
/// every policy's DFA consumes the full history from session start
/// (history dependence), an event is refused when it would drive the
/// product into a state whose offending mask intersects the *active*
/// mask, opening a frame is refused when its policy is offending at the
/// instant the frame opens, and closing a frame never fails. Violations
/// latch: once a refused label is *advanced* anyway, the session stays
/// violated.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_MONITOR_SESSIONMONITOR_H
#define SUS_MONITOR_SESSIONMONITOR_H

#include "monitor/Fused.h"

#include <cassert>

namespace sus {
namespace monitor {

/// Runs one session against a fused policy set.
class SessionMonitor {
public:
  explicit SessionMonitor(const FusedPolicyAutomaton &Fused)
      : F(&Fused), State(Fused.Automaton.start()),
        ActiveCounts(Fused.Policies.size(), 0) {}

  const FusedPolicyAutomaton &fused() const { return *F; }
  automata::StateId state() const { return State; }
  uint32_t activeMask() const { return ActiveMask; }
  bool isViolated() const { return Violated; }

  /// Hot path: would firing the event at symbol index \p Idx be admitted?
  bool admitsEventIndex(uint32_t Idx) const {
    automata::StateId Next = F->Automaton.stepIndex(State, Idx);
    return (F->OffendingMask[Next] & ActiveMask) == 0 && !Violated;
  }

  /// Hot path: fires the event at symbol index \p Idx unconditionally.
  void advanceEventIndex(uint32_t Idx) {
    State = F->Automaton.stepIndex(State, Idx);
    if (F->OffendingMask[State] & ActiveMask)
      Violated = true;
  }

  /// Would appending \p L keep the session valid? (No state change.)
  bool wouldAdmit(const hist::Label &L) const {
    if (Violated)
      return false;
    switch (L.kind()) {
    case hist::LabelKind::Event: {
      uint32_t Idx = F->eventIndexOf(L.asEvent());
      // The fused path requires a closed universe (see Fused.h); callers
      // validate closure before enabling it. An out-of-universe event is
      // genuinely undecidable (wildcard/guard edges might match), so the
      // defensive release behaviour is to admit it — blocking could be a
      // wrong verdict, which the monitor must never give.
      assert(Idx != FusedPolicyAutomaton::NoEvent &&
             "event outside the fused universe");
      return Idx == FusedPolicyAutomaton::NoEvent || admitsEventIndex(Idx);
    }
    case hist::LabelKind::FrameOpen: {
      if (L.policy().isTrivial())
        return true;
      int Bit = F->policyBit(L.policy());
      if (Bit < 0)
        return false; // Uninstantiable (or uncovered): opening violates.
      // History dependence: the history so far must already respect the
      // newly-framed policy.
      return (F->OffendingMask[State] & (1u << Bit)) == 0;
    }
    case hist::LabelKind::FrameClose:
      return true;
    default:
      assert(L.isHistoryRelevant() && "monitor consumes events and framings");
      return true;
    }
  }

  /// Appends \p L; returns false when the session is (now) violated.
  /// Mirrors ValidityChecker::append — violations latch.
  bool advance(const hist::Label &L) {
    switch (L.kind()) {
    case hist::LabelKind::Event: {
      uint32_t Idx = F->eventIndexOf(L.asEvent());
      assert(Idx != FusedPolicyAutomaton::NoEvent &&
             "event outside the fused universe");
      if (Idx != FusedPolicyAutomaton::NoEvent)
        advanceEventIndex(Idx);
      break;
    }
    case hist::LabelKind::FrameOpen: {
      if (L.policy().isTrivial())
        break;
      int Bit = F->policyBit(L.policy());
      if (Bit < 0) {
        Violated = true; // Uninstantiable policy: the framing cannot hold.
        break;
      }
      ++ActiveCounts[Bit];
      ActiveMask |= 1u << Bit;
      if (F->OffendingMask[State] & (1u << Bit))
        Violated = true;
      break;
    }
    case hist::LabelKind::FrameClose: {
      if (L.policy().isTrivial())
        break;
      int Bit = F->policyBit(L.policy());
      if (Bit >= 0 && ActiveCounts[Bit] > 0 && --ActiveCounts[Bit] == 0)
        ActiveMask &= ~(1u << Bit);
      break;
    }
    default:
      assert(L.isHistoryRelevant() && "monitor consumes events and framings");
      break;
    }
    return !Violated;
  }

  /// Would the whole label sequence be admitted, label by label, in order?
  /// (The multi-label probe the Interpreter runs per candidate step.)
  bool wouldAdmitAll(const std::vector<hist::Label> &Ls) const {
    if (Ls.size() == 1)
      return wouldAdmit(Ls.front());
    SessionMonitor Probe = *this;
    for (const hist::Label &L : Ls)
      if (!Probe.wouldAdmit(L) || !Probe.advance(L))
        return false;
    return true;
  }

private:
  const FusedPolicyAutomaton *F;
  automata::StateId State;
  uint32_t ActiveMask = 0;
  bool Violated = false;
  /// Frame-nesting depth per policy bit (⌊ϕ…⌊ϕ nests); only the derived
  /// ActiveMask is consulted on the event hot path.
  std::vector<uint32_t> ActiveCounts;
};

} // namespace monitor
} // namespace sus

#endif // SUS_MONITOR_SESSIONMONITOR_H
