//===- monitor/Fused.cpp - Fused multi-policy monitor DFAs ----------------===//

#include "monitor/Fused.h"

#include "automata/Ops.h"
#include "policy/Compile.h"
#include "support/Casting.h"
#include "support/HashUtil.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace sus;
using namespace sus::monitor;
using namespace sus::hist;

int FusedPolicyAutomaton::policyBit(const PolicyRef &Ref) const {
  auto It = std::lower_bound(Policies.begin(), Policies.end(), Ref);
  if (It == Policies.end() || !(*It == Ref))
    return -1;
  return static_cast<int>(It - Policies.begin());
}

bool FusedPolicyAutomaton::isUnknown(const PolicyRef &Ref) const {
  return std::binary_search(UnknownPolicies.begin(), UnknownPolicies.end(),
                            Ref);
}

void sus::monitor::canonicalizePolicySet(std::vector<PolicyRef> &Refs,
                                         std::vector<Event> &Universe) {
  Refs.erase(std::remove_if(Refs.begin(), Refs.end(),
                            [](const PolicyRef &R) { return R.isTrivial(); }),
             Refs.end());
  std::sort(Refs.begin(), Refs.end());
  Refs.erase(std::unique(Refs.begin(), Refs.end()), Refs.end());
  std::sort(Universe.begin(), Universe.end());
  Universe.erase(std::unique(Universe.begin(), Universe.end()),
                 Universe.end());
}

uint64_t
sus::monitor::policySetFingerprint(const std::vector<PolicyRef> &Refs,
                                   const std::vector<Event> &Universe) {
  size_t Seed = hashAll(Refs.size(), Universe.size());
  for (const PolicyRef &R : Refs)
    hashCombine(Seed, R.hash());
  for (const Event &Ev : Universe)
    hashCombine(Seed, Ev.hash());
  return static_cast<uint64_t>(Seed);
}

namespace {

void collectRefs(const Expr *E, std::vector<PolicyRef> &Out) {
  auto Add = [&Out](const PolicyRef &Ref) {
    if (!Ref.isTrivial())
      Out.push_back(Ref);
  };
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::Event:
    return;
  case ExprKind::CloseMark:
    Add(cast<CloseMarkExpr>(E)->policy());
    return;
  case ExprKind::FrameOpen:
    Add(cast<FrameOpenExpr>(E)->policy());
    return;
  case ExprKind::FrameClose:
    Add(cast<FrameCloseExpr>(E)->policy());
    return;
  case ExprKind::Mu:
    collectRefs(cast<MuExpr>(E)->body(), Out);
    return;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    collectRefs(S->head(), Out);
    collectRefs(S->tail(), Out);
    return;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      collectRefs(B.Body, Out);
    return;
  case ExprKind::Request: {
    const auto *R = cast<RequestExpr>(E);
    Add(R->policy());
    collectRefs(R->body(), Out);
    return;
  }
  case ExprKind::Framing: {
    const auto *F = cast<FramingExpr>(E);
    Add(F->policy());
    collectRefs(F->body(), Out);
    return;
  }
  }
}

} // namespace

std::vector<PolicyRef> sus::monitor::collectPolicyRefs(const Expr *Root) {
  std::vector<PolicyRef> Out;
  collectRefs(Root, Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<PolicyRef>
sus::monitor::collectPolicyRefs(const std::vector<const Expr *> &Exprs) {
  std::vector<PolicyRef> Out;
  for (const Expr *E : Exprs)
    collectRefs(E, Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

namespace {

struct TupleHash {
  size_t operator()(const std::vector<automata::StateId> &V) const noexcept {
    size_t Seed = V.size();
    for (automata::StateId S : V)
      hashCombineValue(Seed, S);
    return Seed;
  }
};

} // namespace

Outcome<FusedPolicyAutomaton>
sus::monitor::fusePolicies(const policy::PolicyRegistry &Registry,
                           const StringInterner &Interner,
                           std::vector<PolicyRef> Refs,
                           std::vector<Event> Universe,
                           const FuseOptions &Opts) {
  trace::Span Span("monitor.fuse", "monitor");
  canonicalizePolicySet(Refs, Universe);

  FusedPolicyAutomaton F;
  F.Universe = std::move(Universe);
  F.Fingerprint = policySetFingerprint(Refs, F.Universe);
  for (uint32_t I = 0; I < F.Universe.size(); ++I)
    F.EventIndex.emplace(F.Universe[I], I);

  // Resolve each reference; uninstantiable ones need no automaton (their
  // frame-open is a violation by construction, matching the legacy path).
  std::vector<policy::PolicyInstance> Instances;
  for (const PolicyRef &Ref : Refs) {
    std::optional<policy::PolicyInstance> Inst =
        Registry.instantiate(Ref, Interner, nullptr);
    if (Inst) {
      F.Policies.push_back(Ref);
      Instances.push_back(std::move(*Inst));
    } else {
      F.UnknownPolicies.push_back(Ref);
    }
  }

  if (F.Policies.size() > FusedPolicyAutomaton::MaxPolicies)
    return ResourceExhausted{ResourceKind::ProductStates, F.Policies.size(),
                             FusedPolicyAutomaton::MaxPolicies};

  // Per-policy compile + Hopcroft. compilePolicy is total over the dense
  // codes 0..|Universe|-1 and minimize preserves totality (it completes
  // over the effective alphabet first), so the product below never sees a
  // missing transition.
  const uint32_t U = static_cast<uint32_t>(F.Universe.size());
  const size_t K = Instances.size();
  std::vector<automata::Dfa> Parts;
  Parts.reserve(K);
  for (const policy::PolicyInstance &Inst : Instances)
    Parts.push_back(
        automata::minimize(policy::compilePolicy(Inst, F.Universe).Automaton));

  // Product BFS with hash interning; states numbered in discovery order.
  std::unordered_map<std::vector<automata::StateId>, automata::StateId,
                     TupleHash>
      Index;
  std::deque<std::vector<automata::StateId>> Work;
  std::vector<uint32_t> Masks;
  std::vector<automata::StateId> Trans; // NumStates × U, row-major.

  auto MaskOf = [&](const std::vector<automata::StateId> &Tuple) {
    uint32_t Mask = 0;
    for (size_t I = 0; I < K; ++I)
      if (Parts[I].isAccepting(Tuple[I]))
        Mask |= 1u << I;
    return Mask;
  };

  std::optional<ResourceExhausted> Trip;
  auto Intern =
      [&](std::vector<automata::StateId> Tuple) -> automata::StateId {
    auto It = Index.find(Tuple);
    if (It != Index.end())
      return It->second;
    uint64_t Count = Masks.size() + 1;
    if (Count > Opts.MaxStates) {
      Trip = ResourceExhausted{ResourceKind::ProductStates, Count,
                               Opts.MaxStates};
      return automata::Dfa::NoState;
    }
    if (Opts.Gov)
      if (auto E = Opts.Gov->charge(ResourceKind::ProductStates, Count)) {
        Trip = *E;
        return automata::Dfa::NoState;
      }
    auto Id = static_cast<automata::StateId>(Masks.size());
    Masks.push_back(MaskOf(Tuple));
    Index.emplace(Tuple, Id);
    Work.push_back(std::move(Tuple));
    return Id;
  };

  std::vector<automata::StateId> StartTuple(K);
  for (size_t I = 0; I < K; ++I)
    StartTuple[I] = Parts[I].start();
  Intern(std::move(StartTuple));
  if (Trip)
    return *Trip;

  while (!Work.empty()) {
    if (Opts.Gov)
      if (auto E = Opts.Gov->poll())
        return *E;
    std::vector<automata::StateId> Tuple = std::move(Work.front());
    Work.pop_front();
    for (uint32_t C = 0; C < U; ++C) {
      std::vector<automata::StateId> Next(K);
      for (size_t I = 0; I < K; ++I) {
        Next[I] = Parts[I].stepIndex(Tuple[I], C);
        assert(Next[I] != automata::Dfa::NoState &&
               "minimized policy DFA must be total");
      }
      automata::StateId To = Intern(std::move(Next));
      if (Trip)
        return *Trip;
      Trans.push_back(To);
    }
    // U == 0: the row is empty; the single product state still exists.
  }

  const auto N = static_cast<uint32_t>(Masks.size());

  // Mask-aware Moore refinement: initial classes keyed by OffendingMask
  // (first-occurrence order), then split on successor-class signatures
  // until stable. This is the acceptance-vector analogue of DFA
  // minimization — states merge only when no event sequence can ever
  // tell their masks apart.
  std::vector<uint32_t> Cls(N);
  uint32_t NumCls = 0;
  {
    std::unordered_map<uint32_t, uint32_t> ByMask;
    for (uint32_t S = 0; S < N; ++S) {
      auto It = ByMask.find(Masks[S]);
      if (It == ByMask.end())
        It = ByMask.emplace(Masks[S], NumCls++).first;
      Cls[S] = It->second;
    }
  }
  for (bool Changed = true; Changed;) {
    Changed = false;
    std::unordered_map<std::vector<uint32_t>, uint32_t, TupleHash> BySig;
    std::vector<uint32_t> NewCls(N);
    uint32_t NewNum = 0;
    std::vector<uint32_t> Sig(U + 1);
    for (uint32_t S = 0; S < N; ++S) {
      Sig[0] = Cls[S];
      for (uint32_t C = 0; C < U; ++C)
        Sig[C + 1] = Cls[Trans[size_t(S) * U + C]];
      auto It = BySig.find(Sig);
      if (It == BySig.end())
        It = BySig.emplace(Sig, NewNum++).first;
      NewCls[S] = It->second;
    }
    if (NewNum != NumCls) {
      Changed = true;
      NumCls = NewNum;
    }
    Cls = std::move(NewCls);
  }

  // Quotient automaton. Class ids are first-occurrence in state order and
  // state 0 is the start, so the start lands on class 0 — numbering is
  // deterministic.
  std::vector<automata::SymbolCode> Codes(U);
  for (uint32_t C = 0; C < U; ++C)
    Codes[C] = C;
  F.Automaton.reserveAlphabet(Codes);
  F.OffendingMask.assign(NumCls, 0);
  std::vector<uint32_t> Rep(NumCls, ~0u);
  for (uint32_t S = 0; S < N; ++S)
    if (Rep[Cls[S]] == ~0u)
      Rep[Cls[S]] = S;
  for (uint32_t B = 0; B < NumCls; ++B) {
    automata::StateId Id = F.Automaton.addState(Masks[Rep[B]] != 0);
    (void)Id;
    assert(Id == B && "class numbering must be dense");
    F.OffendingMask[B] = Masks[Rep[B]];
  }
  F.Automaton.setStart(Cls[0]);
  for (uint32_t B = 0; B < NumCls; ++B)
    for (uint32_t C = 0; C < U; ++C)
      F.Automaton.setEdge(B, C, Cls[Trans[size_t(Rep[B]) * U + C]]);
  SUS_AUDIT_AUTOMATON(F.Automaton);

  if (metrics::enabled()) {
    metrics::counter("monitor.fusions").add();
    metrics::counter("monitor.fused_states").add(NumCls);
  }
  Span.count("policies", static_cast<int64_t>(K));
  Span.count("states", static_cast<int64_t>(NumCls));
  return F;
}

std::shared_ptr<const FusedPolicyAutomaton>
FusedCache::find(uint64_t Fingerprint) const {
  MutexLock Lock(M);
  ++S.Lookups;
  auto It = Entries.find(Fingerprint);
  if (It == Entries.end())
    return nullptr;
  ++S.Hits;
  return It->second;
}

std::shared_ptr<const FusedPolicyAutomaton>
FusedCache::fuse(const policy::PolicyRegistry &Registry,
                 const StringInterner &Interner, std::vector<PolicyRef> Refs,
                 std::vector<Event> Universe, const FuseOptions &Opts) {
  canonicalizePolicySet(Refs, Universe);
  uint64_t Fp = policySetFingerprint(Refs, Universe);
  {
    MutexLock Lock(M);
    ++S.Lookups;
    auto It = Entries.find(Fp);
    if (It != Entries.end()) {
      ++S.Hits;
      if (metrics::enabled())
        metrics::counter("monitor.fusion_cache_hits").add();
      return It->second;
    }
  }
  // Fuse outside the lock: a racing duplicate fusion is cheaper than
  // serializing every session open behind one product construction.
  Outcome<FusedPolicyAutomaton> Fused =
      fusePolicies(Registry, Interner, std::move(Refs), std::move(Universe),
                   Opts);
  if (!Fused) {
    MutexLock Lock(M);
    ++S.Refusals;
    if (metrics::enabled())
      metrics::counter("monitor.fusion_fallbacks").add();
    return nullptr;
  }
  auto Shared =
      std::make_shared<const FusedPolicyAutomaton>(Fused.takeValue());
  MutexLock Lock(M);
  ++S.Fusions;
  auto [It, Inserted] = Entries.emplace(Fp, Shared);
  return Inserted ? Shared : It->second;
}

FusedCache::Stats FusedCache::stats() const {
  MutexLock Lock(M);
  return S;
}

std::vector<std::shared_ptr<const FusedPolicyAutomaton>>
FusedCache::snapshot() const {
  MutexLock Lock(M);
  std::vector<std::shared_ptr<const FusedPolicyAutomaton>> Out;
  Out.reserve(Entries.size());
  for (const auto &[Fp, Fused] : Entries)
    Out.push_back(Fused);
  return Out;
}

void FusedCache::restore(
    std::shared_ptr<const FusedPolicyAutomaton> Fused) {
  if (!Fused)
    return;
  MutexLock Lock(M);
  Entries.emplace(Fused->Fingerprint, std::move(Fused));
}
