//===- monitor/Fused.h - Fused multi-policy monitor DFAs --------*- C++ -*-===//
///
/// \file
/// Fuses a *set* of instantiated usage policies into one flat DFA so that
/// a session's entire monitor state is a single integer. Each policy is
/// subset-compiled over a shared concrete event universe (policy/Compile),
/// Hopcroft-minimized, and the product of the per-policy DFAs is built
/// with one offending bitmask per product state (bit i set ⇔ policy i is
/// offending there). Per-event admission then costs one branch-free
/// `Dfa::stepIndex` plus one mask AND against the active-policy mask —
/// the trap-state test — instead of re-running every PolicyMonitor.
///
/// Soundness contract: offending states of usage automata are absorbing,
/// so per-policy acceptance is prefix-sticky and survives language-
/// preserving minimization; the product is additionally reduced by a
/// mask-aware Moore refinement (states are merged only when their masks
/// and successor classes agree). The fused monitor is exact — it blocks a
/// label iff the legacy ValidityChecker probe would (MonitorDiffTest
/// proves this bit-for-bit) — *provided the universe is closed*: every
/// event the session can fire must be in the fusion universe, because an
/// unseen event could match wildcard or guard edges. Callers that cannot
/// guarantee closure must not enable the fused path (net::Interpreter
/// validates closure up front and falls back to the legacy probe).
///
/// Fusion is governed: product blow-up trips the ResourceGovernor's
/// ProductStates budget and returns ResourceExhausted, never a wrong
/// verdict — callers fall back to the legacy probe path.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_MONITOR_FUSED_H
#define SUS_MONITOR_FUSED_H

#include "automata/Nfa.h"
#include "hist/Action.h"
#include "hist/Expr.h"
#include "policy/UsageAutomaton.h"
#include "support/ResourceGovernor.h"
#include "support/Sync.h"

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace sus {
namespace monitor {

/// Knobs for one fusion.
struct FuseOptions {
  /// Governs the product exploration (ProductStates budget, deadline,
  /// cancellation). Null = ungoverned, but MaxStates still applies.
  const ResourceGovernor *Gov = nullptr;

  /// Hard product-state cap that holds even without a governor, so a
  /// pathological policy set can never OOM the monitor.
  uint64_t MaxStates = 1u << 20;
};

/// A set of instantiated policies fused into one flat DFA.
///
/// States are product states of the per-policy minimized DFAs (further
/// merged by mask-aware Moore refinement); symbol code i is Universe[i],
/// and because codes are dense 0..|Universe|-1 the compact alphabet index
/// equals the code, so `eventIndexOf` feeds `Dfa::stepIndex` directly.
struct FusedPolicyAutomaton {
  /// OffendingMask is a uint32_t: a session may fuse at most 32 distinct
  /// non-trivial policies (beyond that, fusion refuses and callers use
  /// the legacy probe).
  static constexpr unsigned MaxPolicies = 32;

  /// Sentinel of eventIndexOf for events outside the universe.
  static constexpr uint32_t NoEvent = ~0u;

  /// The fused transition structure; total over indices 0..|Universe|-1.
  automata::Dfa Automaton;

  /// Per fused state: bit i set ⇔ policy Policies[i] is offending.
  std::vector<uint32_t> OffendingMask;

  /// The fused non-trivial, instantiable policies (sorted, distinct);
  /// index == mask bit.
  std::vector<hist::PolicyRef> Policies;

  /// Referenced policies the registry could not instantiate (sorted).
  /// Opening their frame is always a violation — exactly the legacy
  /// checker's verdict — so they need no automaton.
  std::vector<hist::PolicyRef> UnknownPolicies;

  /// The closed event universe (sorted, distinct); index == symbol code
  /// == compact alphabet index.
  std::vector<hist::Event> Universe;

  /// Cache key: policySetFingerprint(Policies ∪ UnknownPolicies, Universe).
  uint64_t Fingerprint = 0;

  /// Symbol index of \p Ev, or NoEvent when outside the universe.
  uint32_t eventIndexOf(const hist::Event &Ev) const {
    auto It = EventIndex.find(Ev);
    return It == EventIndex.end() ? NoEvent : It->second;
  }

  /// Mask bit of \p Ref, or -1 when not fused.
  int policyBit(const hist::PolicyRef &Ref) const;

  /// True when \p Ref was referenced but uninstantiable.
  bool isUnknown(const hist::PolicyRef &Ref) const;

  /// True when \p Ref is decidable here: fused, or known-uninstantiable.
  bool covers(const hist::PolicyRef &Ref) const {
    return Ref.isTrivial() || policyBit(Ref) >= 0 || isUnknown(Ref);
  }

  size_t numStates() const { return Automaton.numStates(); }

  /// Built by fusePolicies; exposed for hot paths that pre-translate.
  std::unordered_map<hist::Event, uint32_t> EventIndex;
};

/// Canonicalizes a fusion request in place: trivial refs dropped, refs and
/// universe sorted and deduplicated. fusePolicies and the cache key both
/// use this form, so permutations of the same session share one fusion.
void canonicalizePolicySet(std::vector<hist::PolicyRef> &Refs,
                           std::vector<hist::Event> &Universe);

/// Order-independent fingerprint of a *canonicalized* policy set plus
/// universe (the VerifierCache key for fused DFAs).
uint64_t policySetFingerprint(const std::vector<hist::PolicyRef> &Refs,
                              const std::vector<hist::Event> &Universe);

/// Every non-trivial policy reference occurring in \p Root (requests,
/// framings and residual frame markers), deduplicated and sorted.
std::vector<hist::PolicyRef> collectPolicyRefs(const hist::Expr *Root);

/// Union over several expressions.
std::vector<hist::PolicyRef>
collectPolicyRefs(const std::vector<const hist::Expr *> &Exprs);

/// Fuses \p Refs over \p Universe (both canonicalized internally).
/// Returns ResourceExhausted{ProductStates,...} when the product trips
/// the governor, the MaxStates cap, or the MaxPolicies width — callers
/// fall back to the legacy probe path; a fused result is always exact.
Outcome<FusedPolicyAutomaton>
fusePolicies(const policy::PolicyRegistry &Registry,
             const StringInterner &Interner,
             std::vector<hist::PolicyRef> Refs,
             std::vector<hist::Event> Universe,
             const FuseOptions &Opts = FuseOptions());

/// Thread-safe fingerprint-keyed cache of fused DFAs, shared across
/// sessions with the same active policy set (core::VerifierCache owns one
/// per verification session). Exhausted fusions are never cached, so a
/// later run with a larger budget recomputes.
class FusedCache {
public:
  /// The fused DFA for \p Fingerprint, or null.
  std::shared_ptr<const FusedPolicyAutomaton> find(uint64_t Fingerprint) const;

  /// Canonicalizes, then returns the cached fusion or fuses and records
  /// it. Null when fusion was refused (budget/width) — not cached.
  std::shared_ptr<const FusedPolicyAutomaton>
  fuse(const policy::PolicyRegistry &Registry, const StringInterner &Interner,
       std::vector<hist::PolicyRef> Refs, std::vector<hist::Event> Universe,
       const FuseOptions &Opts = FuseOptions());

  struct Stats {
    size_t Lookups = 0;  ///< fuse() + find() calls.
    size_t Hits = 0;     ///< ... answered from the cache.
    size_t Fusions = 0;  ///< Products actually built.
    size_t Refusals = 0; ///< Fusions refused (budget/width trips).
  };
  Stats stats() const;

  /// Every cached fusion, in fingerprint order (for snapshotting).
  std::vector<std::shared_ptr<const FusedPolicyAutomaton>> snapshot() const;

  /// Re-inserts a deserialized fusion under its fingerprint; an existing
  /// entry (fused live in this process) wins.
  void restore(std::shared_ptr<const FusedPolicyAutomaton> Fused);

private:
  /// Leaf lock over the table and stats. fuse() deliberately *releases*
  /// M while building the product (fusion can take milliseconds and may
  /// recurse into governed kernels), then re-locks to insert — losing a
  /// duplicate-fusion race is cheaper than serializing every fusion.
  mutable Mutex M;
  mutable Stats S SUS_GUARDED_BY(M);
  std::map<uint64_t, std::shared_ptr<const FusedPolicyAutomaton>>
      Entries SUS_GUARDED_BY(M);
};

} // namespace monitor
} // namespace sus

#endif // SUS_MONITOR_FUSED_H
