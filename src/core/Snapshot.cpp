//===- core/Snapshot.cpp - Persistent VerifierCache snapshots -------------===//

#include "core/Snapshot.h"

#include "serialize/Serialize.h"
#include "serialize/Snapshot.h"

using namespace sus;
using namespace sus::core;
using namespace sus::serialize;

//===----------------------------------------------------------------------===//
// Save
//===----------------------------------------------------------------------===//

std::string core::saveSnapshot(const hist::HistContext &Ctx,
                               const plan::Repository &Repo,
                               const VerifierCache &Cache,
                               const plan::ServiceIndex *Index,
                               SnapshotStats *Stats) {
  SymbolTable Strings(Ctx.interner());
  ExprEncoder Exprs(Strings);
  SnapshotStats S;

  // Dependent sections are built first; they register every symbol and
  // expression they mention, so the Strings/Exprs sections emitted at
  // the end are complete.
  Writer RepoW;
  RepoW.putU32(static_cast<uint32_t>(Repo.services().size()));
  for (const auto &[Location, Service] : Repo.services()) {
    RepoW.putU32(Strings.idOf(Location));
    RepoW.putU32(Exprs.idOf(Service));
    ++S.Repository;
  }

  VerifierCache::Entries Entries = Cache.exportEntries();

  Writer ProjW;
  ProjW.putU32(static_cast<uint32_t>(Entries.Projections.size()));
  for (const auto &[E, P] : Entries.Projections) {
    ProjW.putU32(Exprs.idOf(E));
    ProjW.putU32(Exprs.idOf(P));
    ++S.Projections;
  }

  Writer CompW;
  CompW.putU32(static_cast<uint32_t>(Entries.Compliances.size()));
  for (const VerifierCache::ComplianceEntry &C : Entries.Compliances) {
    CompW.putU32(Exprs.idOf(C.RequestBody));
    CompW.putU32(Exprs.idOf(C.Service));
    encodeCompliance(CompW, Strings, Exprs, C.Result);
    ++S.Compliances;
  }

  Writer ValdW;
  ValdW.putU32(static_cast<uint32_t>(Entries.Validities.size()));
  for (const VerifierCache::ValidityEntry &V : Entries.Validities) {
    ValdW.putU32(Exprs.idOf(V.Client));
    ValdW.putU32(Strings.idOf(V.ClientLoc));
    ValdW.putU32(static_cast<uint32_t>(V.Pi.bindings().size()));
    for (const auto &[Req, Location] : V.Pi.bindings()) {
      ValdW.putU32(Req);
      ValdW.putU32(Strings.idOf(Location));
    }
    ValdW.putU64(V.MaxStates);
    encodeValidity(ValdW, Strings, V.Result);
    ++S.Validities;
  }

  Writer IndxW;
  std::vector<plan::ServiceIndex::SnapshotEntry> IndexEntries;
  if (Index)
    IndexEntries = Index->snapshotEntries();
  IndxW.putU32(static_cast<uint32_t>(IndexEntries.size()));
  for (const plan::ServiceIndex::SnapshotEntry &E : IndexEntries) {
    IndxW.putU32(Strings.idOf(E.Location));
    IndxW.putU32(Exprs.idOf(E.Service));
    encodeSummary(IndxW, Strings, E.Summary);
    ++S.IndexEntries;
  }

  Writer FusdW;
  auto Fused = Cache.fusedMonitors().snapshot();
  FusdW.putU32(static_cast<uint32_t>(Fused.size()));
  for (const auto &F : Fused) {
    encodeFused(FusdW, Strings, *F);
    ++S.FusedMonitors;
  }

  // Order matters: ExprEncoder::payload() registers the symbols its
  // records mention, so the Exprs payload must be rendered before the
  // Strings payload is captured (the container still stores Strings
  // first — the decoder needs it first).
  std::string ExprsPayload = Exprs.payload();
  std::string StringsPayload = Strings.payload();

  SectionWriter Container;
  Container.addSection(SectionTag::Strings, StringsPayload);
  Container.addSection(SectionTag::Exprs, ExprsPayload);
  Container.addSection(SectionTag::Repository, RepoW.take());
  Container.addSection(SectionTag::Projections, ProjW.take());
  Container.addSection(SectionTag::Compliances, CompW.take());
  Container.addSection(SectionTag::Validities, ValdW.take());
  Container.addSection(SectionTag::Index, IndxW.take());
  Container.addSection(SectionTag::Fused, FusdW.take());

  std::string Bytes = Container.finish();
  S.Bytes = Bytes.size();
  // The tables know their own sizes only through their payloads' counts;
  // read them back from the front of each captured payload.
  {
    Reader SR(StringsPayload);
    S.Strings = SR.getU32();
    Reader ER(ExprsPayload);
    S.Exprs = ER.getU32();
  }
  if (Stats)
    *Stats = S;
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Load
//===----------------------------------------------------------------------===//

namespace {

SnapshotLoadResult fail(std::string Msg) {
  SnapshotLoadResult R;
  R.Error = std::move(Msg);
  return R;
}

/// Wraps one section's Reader and enforces full consumption: a valid
/// section leaves no trailing bytes.
bool sectionDone(Reader &R, const char *What, std::string &Err) {
  if (R.failed()) {
    Err = std::string(What) + " section: " + R.error();
    return false;
  }
  if (!R.atEnd()) {
    Err = std::string(What) + " section has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

SnapshotLoadResult core::loadSnapshot(std::string_view Bytes,
                                      hist::HistContext &Ctx,
                                      const plan::Repository &Repo,
                                      VerifierCache &Cache) {
  SectionReader Container(Bytes);
  if (!Container.ok())
    return fail(Container.error());

  auto StringsSec = Container.section(SectionTag::Strings);
  auto ExprsSec = Container.section(SectionTag::Exprs);
  auto RepoSec = Container.section(SectionTag::Repository);
  if (!StringsSec || !ExprsSec || !RepoSec)
    return fail("snapshot is missing a required section "
                "(strings/exprs/repository)");

  SnapshotLoadResult Out;

  // Strings and expressions re-intern through the live context. This may
  // add entries to the interner/arena even when a later check fails —
  // harmless under hash-consing, and the cache itself is untouched until
  // every section has validated.
  Reader StrR(*StringsSec);
  SymbolDecoder Strings(StrR, Ctx.interner());
  if (!sectionDone(StrR, "strings", Out.Error))
    return Out;
  Out.Stats.Strings = Strings.size();

  Reader ExprR(*ExprsSec);
  ExprDecoder Exprs(ExprR, Strings, Ctx);
  if (!sectionDone(ExprR, "expressions", Out.Error))
    return Out;
  Out.Stats.Exprs = Exprs.size();

  // Repository signature: the snapshot binds to the exact published
  // (location, service) set; hash-consing makes pointer equality the
  // right test after re-interning.
  {
    Reader R(*RepoSec);
    uint32_t Count = R.getU32();
    if (Count != Repo.services().size()) {
      return fail("snapshot does not match the current repository (" +
                  std::to_string(Count) + " recorded services vs " +
                  std::to_string(Repo.services().size()) + " published)");
    }
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      Symbol Location = Strings.symbol(R.getU32(), R);
      const hist::Expr *Service = Exprs.expr(R.getU32(), R);
      if (R.failed())
        break;
      if (!Location.isValid() || !Service)
        return fail("snapshot repository entry is incomplete");
      if (Repo.find(Location) != Service)
        return fail("snapshot does not match the current repository "
                    "(service at '" +
                    std::string(Ctx.interner().text(Location)) +
                    "' differs)");
      ++Out.Stats.Repository;
    }
    if (!sectionDone(R, "repository", Out.Error))
      return Out;
  }

  // Stage everything; absorb only after the last validation passed.
  VerifierCache::Entries Staged;

  if (auto Sec = Container.section(SectionTag::Projections)) {
    Reader R(*Sec);
    uint32_t Count = R.getU32();
    if (!R.checkCount(Count, 8, "projection"))
      return fail("projections section: " + R.error());
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      const hist::Expr *E = Exprs.expr(R.getU32(), R);
      const hist::Expr *P = Exprs.expr(R.getU32(), R);
      if (R.failed())
        break;
      if (!E || !P)
        return fail("projection entry references a null expression");
      Staged.Projections.emplace_back(E, P);
    }
    if (!sectionDone(R, "projections", Out.Error))
      return Out;
    Out.Stats.Projections = Staged.Projections.size();
  }

  if (auto Sec = Container.section(SectionTag::Compliances)) {
    Reader R(*Sec);
    uint32_t Count = R.getU32();
    if (!R.checkCount(Count, 11, "compliance"))
      return fail("compliances section: " + R.error());
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      VerifierCache::ComplianceEntry C;
      C.RequestBody = Exprs.expr(R.getU32(), R);
      C.Service = Exprs.expr(R.getU32(), R);
      C.Result = decodeCompliance(R, Strings, Exprs);
      if (R.failed())
        break;
      if (!C.RequestBody || !C.Service)
        return fail("compliance entry references a null expression");
      Staged.Compliances.push_back(std::move(C));
    }
    if (!sectionDone(R, "compliances", Out.Error))
      return Out;
    Out.Stats.Compliances = Staged.Compliances.size();
  }

  if (auto Sec = Container.section(SectionTag::Validities)) {
    Reader R(*Sec);
    uint32_t Count = R.getU32();
    if (!R.checkCount(Count, 15, "validity"))
      return fail("validities section: " + R.error());
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      VerifierCache::ValidityEntry V;
      V.Client = Exprs.expr(R.getU32(), R);
      V.ClientLoc = Strings.symbol(R.getU32(), R);
      uint32_t NBind = R.getU32();
      if (!R.checkCount(NBind, 8, "plan binding"))
        break;
      for (uint32_t J = 0; J < NBind && !R.failed(); ++J) {
        hist::RequestId Req = R.getU32();
        Symbol Location = Strings.symbol(R.getU32(), R);
        if (R.failed())
          break;
        // Plan::bind asserts freshness; a corrupt duplicate must be a
        // clean rejection instead.
        if (V.Pi.covers(Req))
          return fail("validity entry binds request " +
                      std::to_string(Req) + " twice");
        if (!Location.isValid())
          return fail("validity entry binds an unnamed location");
        V.Pi.bind(Req, Location);
      }
      V.MaxStates = static_cast<size_t>(R.getU64());
      V.Result = decodeValidity(R, Strings);
      if (R.failed())
        break;
      if (!V.Client)
        return fail("validity entry references a null client");
      Staged.Validities.push_back(std::move(V));
    }
    if (!sectionDone(R, "validities", Out.Error))
      return Out;
    Out.Stats.Validities = Staged.Validities.size();
  }

  if (auto Sec = Container.section(SectionTag::Index)) {
    Reader R(*Sec);
    uint32_t Count = R.getU32();
    if (!R.checkCount(Count, 12, "index entry"))
      return fail("index section: " + R.error());
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      plan::ServiceIndex::SnapshotEntry E;
      E.Location = Strings.symbol(R.getU32(), R);
      E.Service = Exprs.expr(R.getU32(), R);
      E.Summary = decodeSummary(R, Strings);
      if (R.failed())
        break;
      if (!E.Location.isValid() || !E.Service)
        return fail("index entry is incomplete");
      Out.IndexEntries.push_back(std::move(E));
    }
    if (!sectionDone(R, "index", Out.Error)) {
      Out.IndexEntries.clear();
      return Out;
    }
    Out.Stats.IndexEntries = Out.IndexEntries.size();
  }

  std::vector<monitor::FusedPolicyAutomaton> Fused;
  if (auto Sec = Container.section(SectionTag::Fused)) {
    Reader R(*Sec);
    uint32_t Count = R.getU32();
    if (!R.checkCount(Count, 16, "fused monitor"))
      return fail("fused section: " + R.error());
    for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
      monitor::FusedPolicyAutomaton F = decodeFused(R, Strings);
      if (R.failed())
        break;
      Fused.push_back(std::move(F));
    }
    if (!sectionDone(R, "fused", Out.Error)) {
      Out.IndexEntries.clear();
      return Out;
    }
    Out.Stats.FusedMonitors = Fused.size();
  }

  // Every section validated: absorb. Live entries win over the snapshot.
  Cache.absorb(Staged);
  for (monitor::FusedPolicyAutomaton &F : Fused)
    Cache.fusedMonitors().restore(
        std::make_shared<const monitor::FusedPolicyAutomaton>(std::move(F)));

  Out.Ok = true;
  Out.Stats.Bytes = Bytes.size();
  return Out;
}
