//===- core/HotelExample.cpp - The paper's motivating example -------------===//

#include "core/HotelExample.h"

#include "policy/Prelude.h"

#include <algorithm>

using namespace sus;
using namespace sus::core;
using namespace sus::hist;

namespace {

/// ϕ(bl, p, t) reference with a named black list.
PolicyRef makePhi(HistContext &Ctx, std::vector<std::string_view> BlackList,
                  int64_t Price, int64_t Rating) {
  PolicyRef Ref;
  Ref.Name = Ctx.symbol("phi");
  std::vector<Value> Bl;
  Bl.reserve(BlackList.size());
  for (std::string_view Name : BlackList)
    Bl.push_back(Value::name(Ctx.symbol(Name)));
  std::sort(Bl.begin(), Bl.end());
  Ref.Args.push_back(std::move(Bl));
  Ref.Args.push_back({Value::integer(Price)});
  Ref.Args.push_back({Value::integer(Rating)});
  return Ref;
}

/// A hotel: α_sgn(id)·α_p(price)·α_ta(rating) · IdC?.(Bok! ⊕ UnA! [⊕ Del!]).
const Expr *makeHotel(HistContext &Ctx, std::string_view Id, int64_t Price,
                      int64_t Rating, bool OffersDelay) {
  std::vector<ChoiceBranch> Answers = {
      {CommAction::output(Ctx.symbol("Bok")), Ctx.empty()},
      {CommAction::output(Ctx.symbol("UnA")), Ctx.empty()},
  };
  if (OffersDelay)
    Answers.push_back({CommAction::output(Ctx.symbol("Del")), Ctx.empty()});
  return Ctx.seq({
      Ctx.event("sgn", Id),
      Ctx.event("p", Price),
      Ctx.event("ta", Rating),
      Ctx.receive("IdC", Ctx.intChoice(std::move(Answers))),
  });
}

/// A client: open_{r,ϕ} Req!.(CoBo?.Pay! + NoAv?) close_{r,ϕ}.
const Expr *makeClient(HistContext &Ctx, RequestId Request, PolicyRef Phi) {
  const Expr *Body = Ctx.send(
      "Req", Ctx.extChoice({
                 {CommAction::input(Ctx.symbol("CoBo")),
                  Ctx.send("Pay", Ctx.empty())},
                 {CommAction::input(Ctx.symbol("NoAv")), Ctx.empty()},
             }));
  return Ctx.request(Request, std::move(Phi), Body);
}

} // namespace

plan::Plan HotelExample::pi1() const {
  plan::Plan Pi;
  Pi.bind(1, LBr);
  Pi.bind(3, LS3);
  return Pi;
}

plan::Plan HotelExample::pi2() const {
  plan::Plan Pi;
  Pi.bind(2, LBr);
  Pi.bind(3, LS2);
  return Pi;
}

plan::Plan HotelExample::pi3() const {
  plan::Plan Pi;
  Pi.bind(2, LBr);
  Pi.bind(3, LS3);
  return Pi;
}

plan::Plan HotelExample::pi2Valid() const {
  plan::Plan Pi;
  Pi.bind(2, LBr);
  Pi.bind(3, LS4);
  return Pi;
}

HotelExample sus::core::makeHotelExample(HistContext &Ctx) {
  HotelExample Ex;
  Ex.Ctx = &Ctx;

  Ex.LC1 = Ctx.symbol("c1");
  Ex.LC2 = Ctx.symbol("c2");
  Ex.LBr = Ctx.symbol("br");
  Ex.LS1 = Ctx.symbol("s1");
  Ex.LS2 = Ctx.symbol("s2");
  Ex.LS3 = Ctx.symbol("s3");
  Ex.LS4 = Ctx.symbol("s4");

  Ex.Phi1 = makePhi(Ctx, {"s1"}, 45, 100);
  Ex.Phi2 = makePhi(Ctx, {"s1", "s3"}, 40, 70);

  // Clients C1 and C2 (Fig. 2) differ only in the policy instantiation.
  Ex.C1 = makeClient(Ctx, 1, Ex.Phi1);
  Ex.C2 = makeClient(Ctx, 2, Ex.Phi2);

  // Br = Req?. open_{3,∅} IdC!.(Bok? + UnA?) close_{3,∅} .
  //      (CoBo!.Pay? ⊕ NoAv!).
  const Expr *BrSession = Ctx.send(
      "IdC", Ctx.extChoice({
                 {CommAction::input(Ctx.symbol("Bok")), Ctx.empty()},
                 {CommAction::input(Ctx.symbol("UnA")), Ctx.empty()},
             }));
  const Expr *BrAnswer = Ctx.intChoice({
      {CommAction::output(Ctx.symbol("CoBo")),
       Ctx.receive("Pay", Ctx.empty())},
      {CommAction::output(Ctx.symbol("NoAv")), Ctx.empty()},
  });
  Ex.Br = Ctx.receive(
      "Req",
      Ctx.seq(Ctx.request(3, PolicyRef(), BrSession), BrAnswer));

  // Hotels S1–S4 (Fig. 2). Only S2 offers the extra Del message.
  Ex.S1 = makeHotel(Ctx, "s1", 45, 80, /*OffersDelay=*/false);
  Ex.S2 = makeHotel(Ctx, "s2", 70, 100, /*OffersDelay=*/true);
  Ex.S3 = makeHotel(Ctx, "s3", 90, 100, /*OffersDelay=*/false);
  Ex.S4 = makeHotel(Ctx, "s4", 50, 90, /*OffersDelay=*/false);

  Ex.Repo.add(Ex.LBr, Ex.Br);
  Ex.Repo.add(Ex.LS1, Ex.S1);
  Ex.Repo.add(Ex.LS2, Ex.S2);
  Ex.Repo.add(Ex.LS3, Ex.S3);
  Ex.Repo.add(Ex.LS4, Ex.S4);

  Ex.Registry.add(policy::makeHotelPolicy(Ctx.interner(), "phi"));
  return Ex;
}
