//===- core/Repair.cpp - Incremental plan repair --------------------------===//

#include "core/Repair.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>

using namespace sus;
using namespace sus::core;

namespace {

void sortByPlan(std::vector<PlanVerdict> &Verdicts) {
  std::sort(Verdicts.begin(), Verdicts.end(),
            [](const PlanVerdict &A, const PlanVerdict &B) {
              return A.Pi < B.Pi;
            });
}

void countRepair(const RepairStats &Stats) {
  static metrics::Counter &Runs = metrics::counter("plan.repair.runs");
  static metrics::Counter &Kept = metrics::counter("plan.repair.plans_kept");
  static metrics::Counter &Dropped =
      metrics::counter("plan.repair.plans_dropped");
  static metrics::Counter &Reverified =
      metrics::counter("plan.repair.plans_reverified");
  Runs.add(1);
  Kept.add(Stats.PlansKept);
  Dropped.add(Stats.PlansDropped);
  Reverified.add(Stats.PlansReverified);
}

} // namespace

const VerificationReport &RepairSession::verify() {
  Current = V.verifyClient(Client, ClientLoc);
  sortByPlan(Current.Verdicts);
  Verified = true;
  return Current;
}

Outcome<RepairStats> RepairSession::applyDelta(
    const plan::RepositoryDelta &Delta) {
  trace::Span Span("plan.repair", "verifier");

  // The caches/index must absorb the churn even when there is no baseline
  // yet — the verifier's state has to match its repository regardless.
  RepairStats Stats;
  Stats.Evicted = V.applyDelta(Delta);

  if (!Verified) {
    // No baseline to patch: this "repair" is the initial verification.
    verify();
    Stats.PlansReverified = Current.Verdicts.size();
    countRepair(Stats);
    if (Current.EnumerationExhausted)
      return *Current.EnumerationExhausted;
    return Stats;
  }

  const std::set<plan::Loc> Touched = Delta.touched();

  // Keep every verdict whose plan binds no touched location: none of its
  // compliance pairs or its security exploration involved the change.
  std::vector<PlanVerdict> Kept;
  Kept.reserve(Current.Verdicts.size());
  for (PlanVerdict &Verdict : Current.Verdicts) {
    if (plan::planMentions(Verdict.Pi, Touched))
      ++Stats.PlansDropped;
    else
      Kept.push_back(std::move(Verdict));
  }
  Stats.PlansKept = Kept.size();

  // Re-run bind/undo search, emitting only plans that bind a touched
  // location — the kept set is exactly the complete plans that don't, so
  // kept ∪ emitted is the full post-churn plan set.
  const VerifierOptions &VOpts = V.options();
  plan::EnumeratorOptions EOpts;
  EOpts.MaxPlans = VOpts.MaxPlans;
  EOpts.Governor = VOpts.Governor.get();
  EOpts.Index = V.index();
  EOpts.MustMention = &Touched;
  if (VOpts.PruneWithCompliance)
    EOpts.Filter = [this](const plan::RequestSite &Site, plan::Loc,
                          const hist::Expr *Service) {
      return V.bindingCompliant(Site.body(), Service);
    };
  plan::EnumerationResult Enumeration =
      plan::enumeratePlans(Client, V.repository(), EOpts);
  Span.count("affected", static_cast<int64_t>(Enumeration.Plans.size()));

  if (Enumeration.Exhausted) {
    // The search was cut short: the kept verdicts still stand, but the
    // affected plans are unknown — the report is inconclusive, not wrong.
    Current.Verdicts = std::move(Kept);
    Current.CandidateCount = Current.Verdicts.size();
    Current.BindingsTried = Enumeration.BindingsTried;
    Current.Truncated = false;
    Current.EnumerationExhausted = Enumeration.Exhausted;
    countRepair(Stats);
    return *Enumeration.Exhausted;
  }

  std::vector<PlanVerdict> Repaired =
      V.checkPlans(Client, ClientLoc, Enumeration.Plans);
  Stats.PlansReverified = Repaired.size();

  // A cut-short *verdict* (not enumeration) also makes the round
  // inconclusive: surface the first trip so callers on the Outcome path
  // don't mistake a budget-shaped report for a verified one. (Cut-short
  // results were never cached, so a later repair recomputes them.)
  std::optional<ResourceExhausted> Tripped;
  for (const PlanVerdict &Verdict : Repaired)
    if (Verdict.inconclusive()) {
      Tripped = Verdict.exhaustedReason();
      break;
    }

  Current.Verdicts = std::move(Kept);
  for (PlanVerdict &Verdict : Repaired)
    Current.Verdicts.push_back(std::move(Verdict));
  sortByPlan(Current.Verdicts);
  Current.CandidateCount = Current.Verdicts.size();
  Current.BindingsTried = Enumeration.BindingsTried;
  Current.Truncated = Enumeration.Truncated;
  Current.EnumerationExhausted = std::nullopt;

  countRepair(Stats);
  if (Tripped)
    return *Tripped;
  return Stats;
}
