//===- core/Repair.h - Incremental plan repair ------------------*- C++ -*-===//
///
/// \file
/// Keeps one client's VerificationReport current across repository churn
/// without re-verifying the world. A RepairSession holds the last report;
/// applyDelta() then
///
///   1. evicts the stale VerifierCache entries and patches the candidate
///      index (Verifier::applyDelta),
///   2. *keeps* every verdict whose plan binds no touched location — its
///      compliance pairs and security exploration are unaffected, so the
///      cached conclusion stands,
///   3. re-runs bind/undo search with an emission filter that only
///      surfaces plans binding a touched location (the kept plans are by
///      construction exactly the complete plans that don't), and
///   4. re-verifies only those, merging kept + repaired verdicts into a
///      canonical (plan-sorted) report.
///
/// Repair is governor-charged through the same machinery as a full
/// verification: a deadline or budget trip mid-repair yields an
/// Outcome<RepairStats> carrying the trip, the report is flagged
/// inconclusive (EnumerationExhausted) and individual cut-short checks
/// surface as Inconclusive verdicts — never as wrong ones, and never
/// cached.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_REPAIR_H
#define SUS_CORE_REPAIR_H

#include "core/Verifier.h"
#include "plan/RepositoryDelta.h"

namespace sus {
namespace core {

/// What one applyDelta() did, for the `plan.repair.*` accounting.
struct RepairStats {
  size_t PlansKept = 0;       ///< Verdicts carried over untouched.
  size_t PlansDropped = 0;    ///< Verdicts discarded (mention a touched ℓ).
  size_t PlansReverified = 0; ///< Plans (re-)checked this round.
  VerifierCache::EvictionStats Evicted;

  /// Fraction of the resulting plan set that had to be re-verified.
  double reverifiedFraction() const {
    size_t Total = PlansKept + PlansReverified;
    return Total == 0 ? 0.0
                      : static_cast<double>(PlansReverified) /
                            static_cast<double>(Total);
  }
};

/// An incrementally maintained verification of one client.
class RepairSession {
public:
  /// Binds the session to a verifier (whose repository the caller churns)
  /// and a client. No verification happens yet.
  RepairSession(Verifier &V, const hist::Expr *Client, plan::Loc ClientLoc)
      : V(V), Client(Client), ClientLoc(ClientLoc) {}

  /// Full verification from scratch; the baseline every repair patches.
  /// Verdicts are canonicalized to plan order (enumeration order is an
  /// artifact of the search; repairs merge, so order must be intrinsic).
  const VerificationReport &verify();

  /// Absorbs one batch of (already applied) repository churn. On a
  /// governor trip the session stays coherent — kept verdicts are still
  /// valid, the report is flagged inconclusive — and the trip is
  /// returned instead of stats.
  Outcome<RepairStats> applyDelta(const plan::RepositoryDelta &Delta);

  /// The current (post-repair) report, verdicts sorted by plan.
  const VerificationReport &report() const { return Current; }

private:
  Verifier &V;
  const hist::Expr *Client;
  plan::Loc ClientLoc;
  VerificationReport Current;
  bool Verified = false;
};

} // namespace core
} // namespace sus

#endif // SUS_CORE_REPAIR_H
