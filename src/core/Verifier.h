//===- core/Verifier.h - The §5 verification procedure ----------*- C++ -*-===//
///
/// \file
/// "Given a repository R and a vector of clients, pick up one of them, say
/// H, at a time; generate a valid plan πH for H; for each request
/// open_{r,ϕ} H1 close_{r,ϕ} occurring in the composed service check if
/// H1 ⊢ H2, where πH(r) = ℓ2 and ℓ2 ∈ R. If all these steps succeed,
/// switch off any run-time monitor, and live happily: nothing bad will
/// happen." (§5)
///
/// The Verifier enumerates candidate plans (optionally pruning bindings
/// whose contracts are not compliant), checks per-request compliance via
/// the §4 product automaton and whole-plan security via the §3.1 composed
/// model checker, and reports every verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_VERIFIER_H
#define SUS_CORE_VERIFIER_H

#include "contract/Compliance.h"
#include "plan/Plan.h"
#include "plan/PlanEnumerator.h"
#include "policy/UsageAutomaton.h"
#include "validity/StaticValidity.h"

#include <map>
#include <optional>
#include <ostream>
#include <vector>

namespace sus {
namespace core {

/// Outcome of checking one request binding r[ℓ] for compliance.
struct RequestCheck {
  hist::RequestId Request = 0;
  plan::Loc Service;
  bool Compliant = false;
  std::optional<contract::ComplianceWitness> Witness;
};

/// The full verdict for one candidate plan.
struct PlanVerdict {
  plan::Plan Pi;
  std::vector<RequestCheck> RequestChecks;
  validity::StaticValidityResult Security;

  bool compliancePassed() const {
    for (const RequestCheck &C : RequestChecks)
      if (!C.Compliant)
        return false;
    return true;
  }

  /// A valid plan guarantees progress *and* security: the monitor can be
  /// switched off.
  bool isValid() const { return compliancePassed() && Security.Valid; }
};

/// Everything the verifier learned about one client.
struct VerificationReport {
  std::vector<PlanVerdict> Verdicts;
  size_t CandidateCount = 0;
  size_t BindingsTried = 0;
  bool Truncated = false;

  /// The valid plans, in enumeration order.
  std::vector<plan::Plan> validPlans() const {
    std::vector<plan::Plan> Out;
    for (const PlanVerdict &V : Verdicts)
      if (V.isValid())
        Out.push_back(V.Pi);
    return Out;
  }
};

/// Verifier configuration.
struct VerifierOptions {
  /// Prune plan enumeration with per-binding compliance pre-checks
  /// (sound: a non-compliant binding can never be part of a valid plan).
  bool PruneWithCompliance = true;
  size_t MaxPlans = 1 << 14;
  size_t MaxStatesPerPlan = 1 << 18;
};

/// Verification of a whole network: one report per client. Components of
/// a network do not interact (histories and sessions are per component,
/// Def. 2), so network verification is compositional — exactly the §5
/// "pick up one of them, say H, at a time".
struct NetworkReport {
  std::vector<std::pair<plan::Loc, VerificationReport>> PerClient;

  /// True when every client has at least one valid plan: the whole
  /// network can run monitor-free.
  bool allClientsHaveValidPlans() const {
    for (const auto &[Loc, Report] : PerClient)
      if (Report.validPlans().empty())
        return false;
    return true;
  }
};

/// The end-to-end static verifier.
class Verifier {
public:
  Verifier(hist::HistContext &Ctx, const plan::Repository &Repo,
           const policy::PolicyRegistry &Registry,
           VerifierOptions Options = VerifierOptions())
      : Ctx(Ctx), Repo(Repo), Registry(Registry), Options(Options) {}

  /// Enumerates candidate plans for \p Client and fully checks each.
  VerificationReport verifyClient(const hist::Expr *Client,
                                  plan::Loc ClientLoc);

  /// Verifies every client of a network, one at a time (§5).
  NetworkReport verifyNetwork(
      const std::vector<std::pair<const hist::Expr *, plan::Loc>> &Clients);

  /// Checks one specific plan (compliance per request + security).
  PlanVerdict checkPlan(const hist::Expr *Client, plan::Loc ClientLoc,
                        const plan::Plan &Pi);

  /// Memoized H1 ⊢ H2 between a request body and a service.
  bool bindingCompliant(const hist::Expr *RequestBody,
                        const hist::Expr *Service);

private:
  hist::HistContext &Ctx;
  const plan::Repository &Repo;
  const policy::PolicyRegistry &Registry;
  VerifierOptions Options;

  std::map<std::pair<const hist::Expr *, const hist::Expr *>, bool>
      ComplianceMemo;
};

/// Renders a report in a compact human-readable format.
void printReport(const VerificationReport &Report,
                 const hist::HistContext &Ctx, std::ostream &OS);

} // namespace core
} // namespace sus

#endif // SUS_CORE_VERIFIER_H
