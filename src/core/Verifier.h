//===- core/Verifier.h - The §5 verification procedure ----------*- C++ -*-===//
///
/// \file
/// "Given a repository R and a vector of clients, pick up one of them, say
/// H, at a time; generate a valid plan πH for H; for each request
/// open_{r,ϕ} H1 close_{r,ϕ} occurring in the composed service check if
/// H1 ⊢ H2, where πH(r) = ℓ2 and ℓ2 ∈ R. If all these steps succeed,
/// switch off any run-time monitor, and live happily: nothing bad will
/// happen." (§5)
///
/// The Verifier enumerates candidate plans (optionally pruning bindings
/// whose contracts are not compliant), checks per-request compliance via
/// the §4 product automaton and whole-plan security via the §3.1 composed
/// model checker, and reports every verdict.
///
/// Verification is a pipeline over a shared VerifierCache: every
/// (request body, service) compliance pair is model-checked exactly once
/// per session, and with Jobs > 1 the independent per-plan security
/// explorations fan out over a work-stealing thread pool. Parallel and
/// serial runs produce element-wise identical reports (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_VERIFIER_H
#define SUS_CORE_VERIFIER_H

#include "contract/Compliance.h"
#include "core/VerifierCache.h"
#include "plan/Plan.h"
#include "plan/PlanEnumerator.h"
#include "policy/UsageAutomaton.h"
#include "validity/StaticValidity.h"

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

namespace sus {

class ThreadPool;

namespace core {

/// Outcome of checking one request binding r[ℓ] for compliance.
struct RequestCheck {
  hist::RequestId Request = 0;
  plan::Loc Service;
  bool Compliant = false;
  std::optional<contract::ComplianceWitness> Witness;
  /// Set when a governor stopped the compliance product before a verdict:
  /// Compliant is false but means "inconclusive", not "refuted".
  std::optional<ResourceExhausted> Exhausted;
};

/// The full verdict for one candidate plan.
struct PlanVerdict {
  plan::Plan Pi;
  std::vector<RequestCheck> RequestChecks;
  validity::StaticValidityResult Security;

  bool compliancePassed() const {
    for (const RequestCheck &C : RequestChecks)
      if (!C.Compliant)
        return false;
    return true;
  }

  /// A valid plan guarantees progress *and* security: the monitor can be
  /// switched off.
  bool isValid() const { return compliancePassed() && Security.Valid; }

  /// Inconclusive(resource): a governor trip prevented a verdict, and no
  /// *conclusive* failure was found either — the plan is neither valid
  /// nor refuted. A plan with one refuted request stays plain invalid
  /// even if another check was cut short.
  bool inconclusive() const {
    bool AnyExhausted = false;
    for (const RequestCheck &C : RequestChecks) {
      if (C.Exhausted)
        AnyExhausted = true;
      else if (!C.Compliant)
        return false; // Conclusively non-compliant.
    }
    if (Security.Failure == validity::PlanFailureKind::ResourceExhausted)
      AnyExhausted = true;
    else if (!Security.Valid)
      return false; // Conclusively insecure.
    return AnyExhausted;
  }

  /// The first governor trip behind an inconclusive verdict, if any.
  std::optional<ResourceExhausted> exhaustedReason() const {
    for (const RequestCheck &C : RequestChecks)
      if (C.Exhausted)
        return C.Exhausted;
    if (Security.Failure == validity::PlanFailureKind::ResourceExhausted)
      return Security.Exhausted;
    return std::nullopt;
  }
};

/// Everything the verifier learned about one client.
struct VerificationReport {
  std::vector<PlanVerdict> Verdicts;
  size_t CandidateCount = 0;
  size_t BindingsTried = 0;
  bool Truncated = false;
  /// Set when the governor stopped plan *enumeration* itself: the verdict
  /// list may be missing candidates that were never generated.
  std::optional<ResourceExhausted> EnumerationExhausted;

  /// The valid plans, in enumeration order.
  std::vector<plan::Plan> validPlans() const {
    std::vector<plan::Plan> Out;
    for (const PlanVerdict &V : Verdicts)
      if (V.isValid())
        Out.push_back(V.Pi);
    return Out;
  }

  /// True when any part of this report is Inconclusive(resource): a
  /// missing valid plan then means "ran out of budget", not "refuted".
  bool anyInconclusive() const {
    if (EnumerationExhausted)
      return true;
    for (const PlanVerdict &V : Verdicts)
      if (V.inconclusive())
        return true;
    return false;
  }
};

/// Verifier configuration.
struct VerifierOptions {
  /// Prune plan enumeration with per-binding compliance pre-checks
  /// (sound: a non-compliant binding can never be part of a valid plan).
  bool PruneWithCompliance = true;
  size_t MaxPlans = 1 << 14;
  size_t MaxStatesPerPlan = 1 << 18;

  /// Worker threads for per-plan security checking. 1 = fully serial;
  /// 0 = one per hardware thread. Reports are identical at any width.
  unsigned Jobs = 1;

  /// Route checkPlan through the shared VerifierCache. Off reproduces the
  /// pre-cache behaviour (each plan re-checks its compliance pairs and
  /// re-explores its state space; only the pruning filter memoizes) — kept
  /// for the B7 baseline measurements. Off forces Jobs = 1.
  bool UseCache = true;

  /// Enumerate candidates through a plan::ServiceIndex (built lazily per
  /// verifier, kept current by applyDelta) instead of scanning the whole
  /// repository per request. Effective only with PruneWithCompliance on:
  /// the index's pre-screens reject exactly (a subset of) what the
  /// compliance filter rejects, so indexed runs emit the identical plan
  /// set; without the filter the scan would emit non-compliant plans the
  /// index skips, which would change reports. Off (the default) keeps
  /// every existing output byte-identical.
  bool UseIndex = false;

  /// Optional resource governor threaded through every kernel this
  /// verifier runs (enumeration, compliance products, security
  /// explorations). Null (the default) takes the ungoverned fast paths:
  /// output is bit-for-bit what it was before governance existed.
  /// Shared so several verifiers (and the tool driver) can arm one
  /// deadline or cancel token for a whole session.
  std::shared_ptr<ResourceGovernor> Governor;
};

/// Verification of a whole network: one report per client. Components of
/// a network do not interact (histories and sessions are per component,
/// Def. 2), so network verification is compositional — exactly the §5
/// "pick up one of them, say H, at a time".
struct NetworkReport {
  std::vector<std::pair<plan::Loc, VerificationReport>> PerClient;

  /// True when every client has at least one valid plan: the whole
  /// network can run monitor-free.
  bool allClientsHaveValidPlans() const {
    for (const auto &[Loc, Report] : PerClient)
      if (Report.validPlans().empty())
        return false;
    return true;
  }
};

/// The end-to-end static verifier.
class Verifier {
public:
  /// \p Cache may be shared with other verifiers over the same context,
  /// repository and registry; by default each verifier owns a fresh one.
  Verifier(hist::HistContext &Ctx, const plan::Repository &Repo,
           const policy::PolicyRegistry &Registry,
           VerifierOptions Options = VerifierOptions(),
           std::shared_ptr<VerifierCache> Cache = nullptr);
  ~Verifier();

  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Enumerates candidate plans for \p Client and fully checks each.
  VerificationReport verifyClient(const hist::Expr *Client,
                                  plan::Loc ClientLoc);

  /// Verifies every client of a network, one at a time (§5).
  NetworkReport verifyNetwork(
      const std::vector<std::pair<const hist::Expr *, plan::Loc>> &Clients);

  /// Checks one specific plan (compliance per request + security).
  PlanVerdict checkPlan(const hist::Expr *Client, plan::Loc ClientLoc,
                        const plan::Plan &Pi);

  /// Checks a batch of plans, routing through the parallel pipeline when
  /// Jobs > 1. Verdicts come back in input order, element-wise identical
  /// to per-plan checkPlan calls — this is the re-verification engine of
  /// core::RepairSession.
  std::vector<PlanVerdict> checkPlans(const hist::Expr *Client,
                                      plan::Loc ClientLoc,
                                      const std::vector<plan::Plan> &Plans);

  /// Absorbs one batch of (already applied) repository churn: evicts the
  /// stale VerifierCache entries and patches the candidate index. Returns
  /// what was evicted. The Repository reference this verifier holds must
  /// be the one the delta was applied to.
  VerifierCache::EvictionStats applyDelta(const plan::RepositoryDelta &Delta);

  /// The candidate index, built on first use (verifyClient with UseIndex,
  /// or an explicit call — e.g. to warm it before timing). Null only when
  /// indexing is disabled by options.
  const plan::ServiceIndex *index();

  /// Installs a pre-built candidate index (the snapshot warm-start path:
  /// a ServiceIndex rebuilt from persisted summaries instead of fresh
  /// contract analysis). The index must describe this verifier's
  /// repository. Ignored (dropped) when indexing is disabled by options.
  void adoptIndex(std::unique_ptr<plan::ServiceIndex> Warm);

  /// Replaces the session governor for subsequent checks — the daemon
  /// re-arms per-request deadlines/budgets on a resident verifier this
  /// way. Null disarms. Not thread-safe against concurrent verification:
  /// callers serialize requests (susd holds its session lock).
  void setGovernor(std::shared_ptr<ResourceGovernor> Governor) {
    Options.Governor = std::move(Governor);
  }

  /// Memoized H1 ⊢ H2 between a request body and a service. Under an
  /// armed governor this also returns true when the check was cut short:
  /// only a *conclusive* refutation may prune a binding. Trips are never
  /// memoized.
  bool bindingCompliant(const hist::Expr *RequestBody,
                        const hist::Expr *Service);

  /// Session cache counters (shared with every co-owner of the cache).
  VerifierStats stats() const { return Cache->stats(); }

  const std::shared_ptr<VerifierCache> &cache() const { return Cache; }

  const VerifierOptions &options() const { return Options; }
  const plan::Repository &repository() const { return Repo; }

private:
  /// One per-worker verification shard: a private HistContext (seeded so
  /// symbol ids match the session context) plus the client and repository
  /// cloned into it. HistContext is single-threaded; sharding is what
  /// lets security checking run in parallel at all.
  struct Shard;

  /// The request sites a plan must serve: the client's own requests plus,
  /// transitively, those of every planned service.
  std::map<hist::RequestId, plan::RequestSite>
  collectPlanSites(const hist::Expr *Client, const plan::Plan &Pi) const;

  /// Builds the per-request compliance section of a verdict, answering
  /// every pair from the cache (or directly when UseCache is off).
  std::vector<RequestCheck>
  buildRequestChecks(const std::map<hist::RequestId, plan::RequestSite> &ById,
                     const plan::Plan &Pi);

  /// Cache-aware whole-plan security check on the session context. When
  /// \p CacheHit is non-null it reports whether the verdict came from the
  /// VerifierCache (always false with UseCache off).
  validity::StaticValidityResult securityOf(const hist::Expr *Client,
                                            plan::Loc ClientLoc,
                                            const plan::Plan &Pi,
                                            bool *CacheHit = nullptr);

  /// Checks every enumerated plan through the parallel pipeline:
  /// compliance pre-warmed serially through the cache, security fanned
  /// out over per-worker shards. Results land in enumeration order.
  ///
  /// Concurrency discipline (DESIGN.md §11): workers never lock. Each
  /// task writes only its own Report slot (disjoint indices) through a
  /// private per-worker Shard; the shared VerifierCache is read-only to
  /// workers after the serial pre-warm, and ThreadPool::waitIdle() is
  /// the join edge that publishes every slot back to the caller.
  void checkPlansParallel(const hist::Expr *Client, plan::Loc ClientLoc,
                          const std::vector<plan::Plan> &Plans,
                          unsigned Jobs, VerificationReport &Report);

  /// Effective worker count (resolves Jobs == 0, honours UseCache).
  unsigned effectiveJobs() const;

  /// The session governor, or null when ungoverned.
  const ResourceGovernor *gov() const { return Options.Governor.get(); }

  /// Memoized compliance with the full result (witness + exhaustion),
  /// honouring UseCache and the governor. Exhausted results are never
  /// memoized on either path.
  contract::ComplianceResult complianceOf(const hist::Expr *RequestBody,
                                          const hist::Expr *Service);

  /// True when candidate selection goes through the index: requires both
  /// UseIndex and the compliance filter (see VerifierOptions::UseIndex).
  bool indexEffective() const {
    return Options.UseIndex && Options.PruneWithCompliance;
  }

  hist::HistContext &Ctx;
  const plan::Repository &Repo;
  const policy::PolicyRegistry &Registry;
  VerifierOptions Options;
  std::shared_ptr<VerifierCache> Cache;

  /// Lazily built candidate index (only when indexEffective()).
  std::unique_ptr<plan::ServiceIndex> Index;

  /// Lazily created; rebuilt when the requested width changes.
  std::unique_ptr<ThreadPool> Pool;

  /// Legacy pruning memo, used only when UseCache is off.
  std::map<std::pair<const hist::Expr *, const hist::Expr *>, bool>
      ComplianceMemo;
};

/// Renders a report in a compact human-readable format.
void printReport(const VerificationReport &Report,
                 const hist::HistContext &Ctx, std::ostream &OS);

} // namespace core
} // namespace sus

#endif // SUS_CORE_VERIFIER_H
