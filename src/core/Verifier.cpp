//===- core/Verifier.cpp - The §5 verification procedure ------------------===//

#include "core/Verifier.h"

#include "hist/Clone.h"
#include "plan/RequestExtract.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>

using namespace sus;
using namespace sus::core;

//===----------------------------------------------------------------------===//
// Shards
//===----------------------------------------------------------------------===//

/// A worker-private copy of the verification inputs. The shard interner is
/// seeded from the session interner first, so every symbol keeps its id and
/// every canonical Symbol-based ordering (choice-branch sorting, derivative
/// enumeration) coincides with the session's — which is why a shard's
/// exploration reproduces the serial one bit-for-bit.
struct Verifier::Shard {
  hist::HistContext Ctx;
  const hist::Expr *Client = nullptr;
  plan::Repository Repo;

  Shard(const hist::HistContext &Main, const hist::Expr *MainClient,
        const plan::Repository &MainRepo) {
    const StringInterner &From = Main.interner();
    Ctx.interner().seedFrom(From);
    Client = hist::cloneExpr(Ctx, From, MainClient);
    for (const auto &[Loc, Service] : MainRepo.services())
      Repo.add(hist::cloneSymbol(Ctx, From, Loc),
               hist::cloneExpr(Ctx, From, Service), MainRepo.capacity(Loc));
  }
};

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Verifier::Verifier(hist::HistContext &Ctx, const plan::Repository &Repo,
                   const policy::PolicyRegistry &Registry,
                   VerifierOptions Options,
                   std::shared_ptr<VerifierCache> Cache)
    : Ctx(Ctx), Repo(Repo), Registry(Registry), Options(Options),
      Cache(Cache ? std::move(Cache) : std::make_shared<VerifierCache>()) {}

Verifier::~Verifier() = default;

unsigned Verifier::effectiveJobs() const {
  if (!Options.UseCache)
    return 1;
  return Options.Jobs == 0 ? ThreadPool::defaultWorkers() : Options.Jobs;
}

//===----------------------------------------------------------------------===//
// Compliance
//===----------------------------------------------------------------------===//

contract::ComplianceResult
Verifier::complianceOf(const hist::Expr *RequestBody,
                       const hist::Expr *Service) {
  if (Options.UseCache)
    return Cache->compliance(Ctx, RequestBody, Service, gov());
  return contract::checkServiceCompliance(Ctx, RequestBody, Service, gov());
}

bool Verifier::bindingCompliant(const hist::Expr *RequestBody,
                                const hist::Expr *Service) {
  if (Options.UseCache) {
    contract::ComplianceResult R =
        Cache->compliance(Ctx, RequestBody, Service, gov());
    // An exhausted product refutes nothing: keep the binding, so the
    // per-plan checks surface it as inconclusive instead of this pruning
    // silently shrinking the candidate set.
    return R.Compliant || R.Exhausted.has_value();
  }
  auto Key = std::make_pair(RequestBody, Service);
  auto It = ComplianceMemo.find(Key);
  if (It != ComplianceMemo.end())
    return It->second;
  contract::ComplianceResult R =
      contract::checkServiceCompliance(Ctx, RequestBody, Service, gov());
  if (R.Exhausted)
    return true; // Inconclusive: keep the binding, don't memoize a trip.
  ComplianceMemo.emplace(Key, R.Compliant);
  return R.Compliant;
}

std::map<hist::RequestId, plan::RequestSite>
Verifier::collectPlanSites(const hist::Expr *Client,
                           const plan::Plan &Pi) const {
  // Collect the request sites of the composed service: the client's own
  // requests plus, transitively, those of every planned service.
  std::vector<plan::RequestSite> Sites = plan::extractRequests(Client);
  std::map<hist::RequestId, plan::RequestSite> ById;
  for (size_t I = 0; I < Sites.size(); ++I) {
    const plan::RequestSite &S = Sites[I];
    if (!ById.count(S.id()))
      ById.emplace(S.id(), S);
    if (std::optional<plan::Loc> L = Pi.lookup(S.id()))
      if (const hist::Expr *Service = Repo.find(*L))
        for (const plan::RequestSite &Nested :
             plan::extractRequests(Service)) {
          if (ById.count(Nested.id()))
            continue;
          Sites.push_back(Nested);
          ById.emplace(Nested.id(), Nested);
        }
  }
  return ById;
}

std::vector<RequestCheck> Verifier::buildRequestChecks(
    const std::map<hist::RequestId, plan::RequestSite> &ById,
    const plan::Plan &Pi) {
  std::vector<RequestCheck> Checks;
  Checks.reserve(ById.size());
  for (const auto &[Id, Site] : ById) {
    RequestCheck Check;
    Check.Request = Id;
    std::optional<plan::Loc> L = Pi.lookup(Id);
    if (!L || !Repo.find(*L)) {
      Check.Compliant = false;
      Checks.push_back(std::move(Check));
      continue;
    }
    Check.Service = *L;
    contract::ComplianceResult R = complianceOf(Site.body(), Repo.find(*L));
    Check.Compliant = R.Compliant;
    Check.Witness = std::move(R.Witness);
    Check.Exhausted = R.Exhausted;
    Checks.push_back(std::move(Check));
  }
  return Checks;
}

//===----------------------------------------------------------------------===//
// Security
//===----------------------------------------------------------------------===//

validity::StaticValidityResult Verifier::securityOf(const hist::Expr *Client,
                                                    plan::Loc ClientLoc,
                                                    const plan::Plan &Pi,
                                                    bool *CacheHit) {
  if (CacheHit)
    *CacheHit = false;
  validity::StaticValidityOptions VOpts;
  VOpts.MaxStates = Options.MaxStatesPerPlan;
  VOpts.Governor = gov();
  if (!Options.UseCache)
    return validity::checkPlanValidity(Ctx, Client, ClientLoc, Pi, Repo,
                                       Registry, VOpts);
  if (std::optional<validity::StaticValidityResult> Hit =
          Cache->findValidity(Client, ClientLoc, Pi, VOpts.MaxStates)) {
    if (CacheHit)
      *CacheHit = true;
    return *Hit;
  }
  validity::StaticValidityResult R = validity::checkPlanValidity(
      Ctx, Client, ClientLoc, Pi, Repo, Registry, VOpts);
  // A tripped exploration is not a verdict: record nothing, so the next
  // (possibly unbounded) lookup for this signature recomputes for real.
  if (R.Failure != validity::PlanFailureKind::ResourceExhausted)
    Cache->recordValidity(Client, ClientLoc, Pi, VOpts.MaxStates, R);
  return R;
}

//===----------------------------------------------------------------------===//
// Plan checking
//===----------------------------------------------------------------------===//

namespace {

/// The security verdict of a plan whose exploration never ran (or never
/// finished) because of a governor trip.
validity::StaticValidityResult exhaustedValidity(const ResourceExhausted &E) {
  validity::StaticValidityResult R;
  R.Valid = false;
  R.Failure = validity::PlanFailureKind::ResourceExhausted;
  R.Exhausted = E;
  return R;
}

} // namespace

PlanVerdict Verifier::checkPlan(const hist::Expr *Client,
                                plan::Loc ClientLoc, const plan::Plan &Pi) {
  trace::Span Span("plan.verify", "verifier");
  PlanVerdict Verdict;
  Verdict.Pi = Pi;
  Verdict.RequestChecks = buildRequestChecks(collectPlanSites(Client, Pi), Pi);
  bool CacheHit = false;
  Verdict.Security = securityOf(Client, ClientLoc, Pi, &CacheHit);
  // The span carries one tag: a governor trip outranks the cache verdict
  // (a tripped path is never cached, so "miss" would say nothing anyway).
  if (std::optional<ResourceExhausted> E = Verdict.exhaustedReason())
    Span.tag("governor",
             E->deadlineLike() ? "deadline_exceeded" : "budget_exceeded");
  else
    Span.tag("cache", CacheHit ? "hit" : "miss");
  return Verdict;
}

void Verifier::checkPlansParallel(const hist::Expr *Client,
                                  plan::Loc ClientLoc,
                                  const std::vector<plan::Plan> &Plans,
                                  unsigned Jobs,
                                  VerificationReport &Report) {
  validity::StaticValidityOptions VOpts;
  VOpts.MaxStates = Options.MaxStatesPerPlan;
  VOpts.Governor = gov();

  // Stage 1 (serial, session context): request-site collection and
  // compliance pre-warming. After this loop every (body, service) pair of
  // every plan sits in the cache with its witness, so no worker ever
  // needs the session HistContext for compliance.
  std::vector<std::map<hist::RequestId, plan::RequestSite>> Sites;
  Sites.reserve(Plans.size());
  {
    trace::Span PrewarmSpan("plan.prewarm", "verifier");
    PrewarmSpan.count("plans", static_cast<int64_t>(Plans.size()));
    for (const plan::Plan &Pi : Plans) {
      Sites.push_back(collectPlanSites(Client, Pi));
      for (const auto &[Id, Site] : Sites.back()) {
        std::optional<plan::Loc> L = Pi.lookup(Id);
        if (L && Repo.find(*L))
          Cache->compliance(Ctx, Site.body(), Repo.find(*L), gov());
      }
    }
  }

  // Stage 2: resolve security verdicts from the cache; fan the misses out
  // over per-worker shards. Results are slotted by plan index, so the
  // report order is the enumeration order regardless of scheduling.
  std::vector<std::optional<validity::StaticValidityResult>> Security(
      Plans.size());
  std::vector<size_t> Misses;
  for (size_t I = 0; I < Plans.size(); ++I) {
    Security[I] =
        Cache->findValidity(Client, ClientLoc, Plans[I], VOpts.MaxStates);
    if (!Security[I])
      Misses.push_back(I);
  }

  if (!Misses.empty()) {
    trace::Span FanoutSpan("plan.fanout", "verifier");
    FanoutSpan.count("misses", static_cast<int64_t>(Misses.size()));
    if (!Pool || Pool->numWorkers() != Jobs)
      Pool = std::make_unique<ThreadPool>(Jobs);

    // Shards are created lazily by the first task each worker runs; a
    // worker executes one task at a time, so its slot needs no lock, and
    // waitIdle() orders every write below before the main thread reads.
    std::vector<std::unique_ptr<Shard>> Shards(Pool->numWorkers());
    for (size_t I : Misses)
      Pool->submit([&, I](unsigned Worker) {
        trace::Span PlanSpan("plan.verify", "verifier");
        // Poll-first: a task starting after a sticky deadline/cancel trip
        // does no exploration and just reports the trip.
        if (const ResourceGovernor *Gov = gov())
          if (std::optional<ResourceExhausted> E = Gov->trip()) {
            PlanSpan.tag("governor", E->deadlineLike() ? "deadline_exceeded"
                                                       : "budget_exceeded");
            Security[I] = exhaustedValidity(*E);
            return;
          }
        PlanSpan.tag("cache", "miss");
        if (!Shards[Worker])
          Shards[Worker] = std::make_unique<Shard>(Ctx, Client, Repo);
        Shard &S = *Shards[Worker];
        Security[I] = validity::checkPlanValidity(
            S.Ctx, S.Client, ClientLoc, Plans[I], S.Repo, Registry, VOpts);
        // Sticky trips doom every queued sibling too: drain the backlog in
        // one motion rather than letting each task rediscover the trip.
        if (Security[I]->Failure ==
                validity::PlanFailureKind::ResourceExhausted &&
            Security[I]->Exhausted && Security[I]->Exhausted->deadlineLike())
          Pool->cancelPending();
      });
    Pool->waitIdle();

    for (size_t I : Misses) {
      if (!Security[I]) {
        // This task was discarded by cancelPending(): synthesize its
        // verdict from the sticky trip that triggered the drain.
        std::optional<ResourceExhausted> E =
            gov() ? gov()->trip() : std::nullopt;
        Security[I] = exhaustedValidity(
            E ? *E : ResourceExhausted{ResourceKind::Cancelled, 0, 0});
      }
      // Tripped explorations stay out of the cache (see securityOf).
      if (Security[I]->Failure !=
          validity::PlanFailureKind::ResourceExhausted)
        Cache->recordValidity(Client, ClientLoc, Plans[I], VOpts.MaxStates,
                              *Security[I]);
    }
  }

  // Stage 3 (serial): assemble verdicts in enumeration order.
  for (size_t I = 0; I < Plans.size(); ++I) {
    PlanVerdict Verdict;
    Verdict.Pi = Plans[I];
    Verdict.RequestChecks = buildRequestChecks(Sites[I], Plans[I]);
    Verdict.Security = std::move(*Security[I]);
    Report.Verdicts.push_back(std::move(Verdict));
  }
}

const plan::ServiceIndex *Verifier::index() {
  if (!indexEffective())
    return nullptr;
  if (!Index)
    Index = std::make_unique<plan::ServiceIndex>(Ctx, Repo);
  return Index.get();
}

void Verifier::adoptIndex(std::unique_ptr<plan::ServiceIndex> Warm) {
  if (indexEffective())
    Index = std::move(Warm);
}

VerifierCache::EvictionStats
Verifier::applyDelta(const plan::RepositoryDelta &Delta) {
  VerifierCache::EvictionStats Evicted = Cache->invalidate(Delta, Repo);
  if (Index)
    Index->apply(Delta);
  return Evicted;
}

std::vector<PlanVerdict>
Verifier::checkPlans(const hist::Expr *Client, plan::Loc ClientLoc,
                     const std::vector<plan::Plan> &Plans) {
  unsigned Jobs = effectiveJobs();
  if (Jobs > 1 && Plans.size() > 1) {
    VerificationReport Scratch;
    checkPlansParallel(Client, ClientLoc, Plans, Jobs, Scratch);
    return std::move(Scratch.Verdicts);
  }
  std::vector<PlanVerdict> Verdicts;
  Verdicts.reserve(Plans.size());
  for (const plan::Plan &Pi : Plans)
    Verdicts.push_back(checkPlan(Client, ClientLoc, Pi));
  return Verdicts;
}

VerificationReport Verifier::verifyClient(const hist::Expr *Client,
                                          plan::Loc ClientLoc) {
  trace::Span ClientSpan("client.verify", "verifier");
  VerificationReport Report;

  plan::EnumeratorOptions EOpts;
  EOpts.MaxPlans = Options.MaxPlans;
  EOpts.Governor = gov();
  EOpts.Index = index();
  if (Options.PruneWithCompliance)
    EOpts.Filter = [this](const plan::RequestSite &Site, plan::Loc,
                          const hist::Expr *Service) {
      return bindingCompliant(Site.body(), Service);
    };

  plan::EnumerationResult Enumeration =
      plan::enumeratePlans(Client, Repo, EOpts);
  Report.CandidateCount = Enumeration.Plans.size();
  Report.BindingsTried = Enumeration.BindingsTried;
  Report.Truncated = Enumeration.Truncated;
  Report.EnumerationExhausted = Enumeration.Exhausted;
  ClientSpan.count("candidates", static_cast<int64_t>(Report.CandidateCount));
  {
    static metrics::Counter &PlansChecked =
        metrics::counter("verifier.plans_checked");
    PlansChecked.add(Enumeration.Plans.size());
  }

  unsigned Jobs = effectiveJobs();
  if (Jobs > 1 && Enumeration.Plans.size() > 1) {
    checkPlansParallel(Client, ClientLoc, Enumeration.Plans, Jobs, Report);
    return Report;
  }
  for (const plan::Plan &Pi : Enumeration.Plans)
    Report.Verdicts.push_back(checkPlan(Client, ClientLoc, Pi));
  return Report;
}

NetworkReport Verifier::verifyNetwork(
    const std::vector<std::pair<const hist::Expr *, plan::Loc>> &Clients) {
  NetworkReport Report;
  for (const auto &[Client, Loc] : Clients)
    Report.PerClient.push_back({Loc, verifyClient(Client, Loc)});
  return Report;
}

void sus::core::printReport(const VerificationReport &Report,
                            const hist::HistContext &Ctx, std::ostream &OS) {
  const StringInterner &In = Ctx.interner();
  OS << "candidate plans: " << Report.CandidateCount
     << " (bindings tried: " << Report.BindingsTried << ")";
  if (Report.Truncated)
    OS << " [truncated]";
  if (Report.EnumerationExhausted)
    OS << " [enumeration inconclusive: "
       << resourceKindName(Report.EnumerationExhausted->Which) << "]";
  OS << "\n";
  for (const PlanVerdict &V : Report.Verdicts) {
    OS << "  plan " << V.Pi.str(In) << ": ";
    if (V.isValid()) {
      OS << "VALID\n";
      continue;
    }
    if (V.inconclusive()) {
      std::optional<ResourceExhausted> E = V.exhaustedReason();
      OS << "Inconclusive(resource: "
         << (E ? resourceKindName(E->Which) : "unknown") << ")\n";
      continue;
    }
    OS << "invalid";
    for (const RequestCheck &C : V.RequestChecks)
      if (!C.Compliant && !C.Exhausted) {
        OS << " [request " << C.Request << " not compliant";
        if (C.Witness)
          OS << ": " << C.Witness->str(Ctx);
        OS << "]";
      }
    if (!V.Security.Valid) {
      OS << " [security: ";
      switch (V.Security.Failure) {
      case validity::PlanFailureKind::PolicyViolation:
        OS << "policy "
           << (V.Security.Policy ? V.Security.Policy->str(In) : "?")
           << " violated";
        break;
      case validity::PlanFailureKind::UnboundRequest:
        OS << "request "
           << (V.Security.Request ? std::to_string(*V.Security.Request)
                                  : "?")
           << " unbound";
        break;
      case validity::PlanFailureKind::UnknownService:
        OS << "unknown service";
        break;
      case validity::PlanFailureKind::UnknownPolicy:
        OS << "unknown policy";
        break;
      case validity::PlanFailureKind::StateSpaceExceeded:
        OS << "state space exceeded";
        break;
      case validity::PlanFailureKind::ResourceExhausted:
        // Only reachable when another check already refuted the plan:
        // the verdict is conclusively invalid, this leg just ran out.
        OS << "inconclusive (resource: "
           << (V.Security.Exhausted
                   ? resourceKindName(V.Security.Exhausted->Which)
                   : "unknown")
           << ")";
        break;
      case validity::PlanFailureKind::None:
        break;
      }
      OS << "]";
    }
    OS << "\n";
  }
  std::vector<plan::Plan> Valid = Report.validPlans();
  OS << "valid plans: " << Valid.size() << "\n";
  size_t Inconclusive = 0;
  for (const PlanVerdict &V : Report.Verdicts)
    if (V.inconclusive())
      ++Inconclusive;
  // Printed only when a governor actually tripped, so ungoverned output
  // is byte-identical to what it always was.
  if (Inconclusive > 0)
    OS << "inconclusive plans: " << Inconclusive << "\n";
}
