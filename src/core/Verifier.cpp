//===- core/Verifier.cpp - The §5 verification procedure ------------------===//

#include "core/Verifier.h"

#include "plan/RequestExtract.h"

using namespace sus;
using namespace sus::core;

bool Verifier::bindingCompliant(const hist::Expr *RequestBody,
                                const hist::Expr *Service) {
  auto Key = std::make_pair(RequestBody, Service);
  auto It = ComplianceMemo.find(Key);
  if (It != ComplianceMemo.end())
    return It->second;
  bool Result =
      contract::checkServiceCompliance(Ctx, RequestBody, Service).Compliant;
  ComplianceMemo.emplace(Key, Result);
  return Result;
}

PlanVerdict Verifier::checkPlan(const hist::Expr *Client,
                                plan::Loc ClientLoc, const plan::Plan &Pi) {
  PlanVerdict Verdict;
  Verdict.Pi = Pi;

  // Collect the request sites of the composed service: the client's own
  // requests plus, transitively, those of every planned service.
  std::vector<plan::RequestSite> Sites = plan::extractRequests(Client);
  std::map<hist::RequestId, plan::RequestSite> ById;
  for (size_t I = 0; I < Sites.size(); ++I) {
    const plan::RequestSite &S = Sites[I];
    if (!ById.count(S.id()))
      ById.emplace(S.id(), S);
    if (std::optional<plan::Loc> L = Pi.lookup(S.id()))
      if (const hist::Expr *Service = Repo.find(*L))
        for (const plan::RequestSite &Nested :
             plan::extractRequests(Service)) {
          if (ById.count(Nested.id()))
            continue;
          Sites.push_back(Nested);
          ById.emplace(Nested.id(), Nested);
        }
  }

  for (const auto &[Id, Site] : ById) {
    RequestCheck Check;
    Check.Request = Id;
    std::optional<plan::Loc> L = Pi.lookup(Id);
    if (!L || !Repo.find(*L)) {
      Check.Compliant = false;
      Verdict.RequestChecks.push_back(std::move(Check));
      continue;
    }
    Check.Service = *L;
    contract::ComplianceResult R =
        contract::checkServiceCompliance(Ctx, Site.body(), Repo.find(*L));
    Check.Compliant = R.Compliant;
    Check.Witness = std::move(R.Witness);
    Verdict.RequestChecks.push_back(std::move(Check));
  }

  validity::StaticValidityOptions VOpts;
  VOpts.MaxStates = Options.MaxStatesPerPlan;
  Verdict.Security = validity::checkPlanValidity(Ctx, Client, ClientLoc, Pi,
                                                 Repo, Registry, VOpts);
  return Verdict;
}

VerificationReport Verifier::verifyClient(const hist::Expr *Client,
                                          plan::Loc ClientLoc) {
  VerificationReport Report;

  plan::EnumeratorOptions EOpts;
  EOpts.MaxPlans = Options.MaxPlans;
  if (Options.PruneWithCompliance)
    EOpts.Filter = [this](const plan::RequestSite &Site, plan::Loc,
                          const hist::Expr *Service) {
      return bindingCompliant(Site.body(), Service);
    };

  plan::EnumerationResult Enumeration =
      plan::enumeratePlans(Client, Repo, EOpts);
  Report.CandidateCount = Enumeration.Plans.size();
  Report.BindingsTried = Enumeration.BindingsTried;
  Report.Truncated = Enumeration.Truncated;

  for (const plan::Plan &Pi : Enumeration.Plans)
    Report.Verdicts.push_back(checkPlan(Client, ClientLoc, Pi));
  return Report;
}

NetworkReport Verifier::verifyNetwork(
    const std::vector<std::pair<const hist::Expr *, plan::Loc>> &Clients) {
  NetworkReport Report;
  for (const auto &[Client, Loc] : Clients)
    Report.PerClient.push_back({Loc, verifyClient(Client, Loc)});
  return Report;
}

void sus::core::printReport(const VerificationReport &Report,
                            const hist::HistContext &Ctx, std::ostream &OS) {
  const StringInterner &In = Ctx.interner();
  OS << "candidate plans: " << Report.CandidateCount
     << " (bindings tried: " << Report.BindingsTried << ")";
  if (Report.Truncated)
    OS << " [truncated]";
  OS << "\n";
  for (const PlanVerdict &V : Report.Verdicts) {
    OS << "  plan " << V.Pi.str(In) << ": ";
    if (V.isValid()) {
      OS << "VALID\n";
      continue;
    }
    OS << "invalid";
    for (const RequestCheck &C : V.RequestChecks)
      if (!C.Compliant) {
        OS << " [request " << C.Request << " not compliant";
        if (C.Witness)
          OS << ": " << C.Witness->str(Ctx);
        OS << "]";
      }
    if (!V.Security.Valid) {
      OS << " [security: ";
      switch (V.Security.Failure) {
      case validity::PlanFailureKind::PolicyViolation:
        OS << "policy "
           << (V.Security.Policy ? V.Security.Policy->str(In) : "?")
           << " violated";
        break;
      case validity::PlanFailureKind::UnboundRequest:
        OS << "request "
           << (V.Security.Request ? std::to_string(*V.Security.Request)
                                  : "?")
           << " unbound";
        break;
      case validity::PlanFailureKind::UnknownService:
        OS << "unknown service";
        break;
      case validity::PlanFailureKind::UnknownPolicy:
        OS << "unknown policy";
        break;
      case validity::PlanFailureKind::StateSpaceExceeded:
        OS << "state space exceeded";
        break;
      case validity::PlanFailureKind::None:
        break;
      }
      OS << "]";
    }
    OS << "\n";
  }
  std::vector<plan::Plan> Valid = Report.validPlans();
  OS << "valid plans: " << Valid.size() << "\n";
}
