//===- core/VerifierCache.h - Shared verification memo tables ---*- C++ -*-===//
///
/// \file
/// A session-scoped cache for the §5 verifier. Compliance of a request
/// body against a service depends only on that pair — never on the plan
/// it appears in — so the cache memoizes, keyed on hash-consed Expr*:
///
///  - projections H! (the §4 erasure computed before every product),
///  - full ComplianceResults including witnesses (not just the boolean
///    the pruning filter keeps),
///  - per-(client, plan-signature) static-validity results.
///
/// A cache may be shared by several Verifier instances *over the same
/// HistContext, repository and registry* (e.g. the declared-plan checks
/// and the enumeration pass of susc). All methods are mutex-guarded; the
/// parallel pipeline additionally pre-warms compliance serially so worker
/// threads never compute through the shared HistContext (see Verifier).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_VERIFIERCACHE_H
#define SUS_CORE_VERIFIERCACHE_H

#include "contract/Compliance.h"
#include "monitor/Fused.h"
#include "plan/Plan.h"
#include "plan/RepositoryDelta.h"
#include "support/Sync.h"
#include "validity/StaticValidity.h"

#include <map>

namespace sus {
namespace core {

/// Observable cache effectiveness counters (monotone per session).
struct VerifierStats {
  size_t ComplianceLookups = 0; ///< compliance() calls.
  size_t ComplianceHits = 0;    ///< ... answered from the memo.
  size_t ProjectionLookups = 0; ///< H! requests (two per compliance miss).
  size_t ProjectionHits = 0;    ///< ... answered from the memo.
  size_t ValidityLookups = 0;   ///< findValidity() calls.
  size_t ValidityHits = 0;      ///< ... answered from the memo.

  size_t complianceComputes() const {
    return ComplianceLookups - ComplianceHits;
  }
  size_t validityComputes() const { return ValidityLookups - ValidityHits; }
};

/// The memo tables. Thread-safe; results are returned by value so no
/// reference outlives the lock.
class VerifierCache {
public:
  /// H! of \p E, memoized across the whole session.
  const hist::Expr *projection(hist::HistContext &Ctx, const hist::Expr *E);

  /// The full Hc! ⊢ Hs! verdict for (request body, service), computed at
  /// most once per session; witnesses are preserved verbatim. A non-null
  /// \p Gov bounds the product exploration on a miss; an exhausted
  /// (inconclusive) result is returned but *not* memoized, so a later
  /// unbounded run recomputes the real verdict.
  contract::ComplianceResult compliance(hist::HistContext &Ctx,
                                        const hist::Expr *RequestBody,
                                        const hist::Expr *Service,
                                        const ResourceGovernor *Gov = nullptr);

  /// Looks up the static-validity verdict of (client, loc, plan) under a
  /// MaxStates bound; std::nullopt on a miss. Misses are *not* computed
  /// here: the verifier decides where (main thread or worker shard) the
  /// exploration runs.
  std::optional<validity::StaticValidityResult>
  findValidity(const hist::Expr *Client, plan::Loc ClientLoc,
               const plan::Plan &Pi, size_t MaxStates);

  /// Records a static-validity verdict computed by the verifier.
  /// Resource-exhausted (partial) results are refused — the cache only
  /// ever holds conclusive verdicts — and assert under -DSUS_AUDIT=ON.
  void recordValidity(const hist::Expr *Client, plan::Loc ClientLoc,
                      const plan::Plan &Pi, size_t MaxStates,
                      validity::StaticValidityResult Result);

  VerifierStats stats() const;

  /// What invalidate() removed, for eviction-precision accounting.
  /// [[nodiscard]]: dropping it silently hides how much of the cache a
  /// repository delta just blew away (repair reports sum these).
  struct [[nodiscard]] EvictionStats {
    size_t ValidityEvicted = 0;   ///< Plan verdicts mentioning a touched ℓ.
    size_t ComplianceEvicted = 0; ///< Verdicts against retired services.
    size_t ProjectionEvicted = 0; ///< Projections of retired services.
  };

  /// Evicts exactly the entries a repository delta can make stale or
  /// unreachable, and nothing else:
  ///
  ///  - validity verdicts whose plan binds any touched location (their
  ///    key resolves locations through the repository, so the verdict no
  ///    longer describes what would be checked today);
  ///  - compliance verdicts and projections whose *service side* is a
  ///    retired expression — one that a change unpublished and that no
  ///    surviving location still publishes (hash-consing can alias one
  ///    expression across locations, so a retired pointer is garbage only
  ///    once nobody publishes it; \p Current is the post-delta truth).
  ///
  /// Entries keyed purely on hash-consed client-side exprs are never
  /// stale — churn can orphan them, not falsify them — so request-body
  /// projections survive.
  EvictionStats invalidate(const plan::RepositoryDelta &Delta,
                           const plan::Repository &Current);

  /// Fused runtime-monitor DFAs keyed by policy-set fingerprint, shared
  /// by every session this cache serves (monitor::FusedCache is itself
  /// thread-safe, so no VerifierCache lock is involved).
  monitor::FusedCache &fusedMonitors() { return FusedMonitors; }
  const monitor::FusedCache &fusedMonitors() const { return FusedMonitors; }

  /// One memoized compliance verdict, keys flattened for serialization.
  struct ComplianceEntry {
    const hist::Expr *RequestBody = nullptr;
    const hist::Expr *Service = nullptr;
    contract::ComplianceResult Result;
  };

  /// One memoized static-validity verdict, keys flattened likewise.
  struct ValidityEntry {
    const hist::Expr *Client = nullptr;
    plan::Loc ClientLoc;
    plan::Plan Pi;
    size_t MaxStates = 0;
    validity::StaticValidityResult Result;
  };

  /// A by-value view of every memo table, the unit the snapshot codecs
  /// (core/Snapshot.h) encode and absorb. Deterministically ordered (map
  /// iteration order), so identical caches export identical entries.
  struct Entries {
    std::vector<std::pair<const hist::Expr *, const hist::Expr *>>
        Projections;
    std::vector<ComplianceEntry> Compliances;
    std::vector<ValidityEntry> Validities;
  };

  /// Copies out every memoized entry (for snapshotting). The cache never
  /// holds inconclusive results, so everything exported is conclusive.
  Entries exportEntries() const;

  /// Merges \p E into the memo tables without overwriting anything
  /// already present (live entries were computed in this very process —
  /// they win). Exhausted entries are skipped defensively. Returns how
  /// many entries were newly inserted.
  size_t absorb(const Entries &E);

private:
  /// (client, location, plan bindings, MaxStates) — the plan signature.
  struct ValidityKey {
    const hist::Expr *Client;
    plan::Loc Loc;
    plan::Plan Pi;
    size_t MaxStates;

    bool operator<(const ValidityKey &O) const {
      if (Client != O.Client)
        return Client < O.Client;
      if (Loc != O.Loc)
        return Loc < O.Loc;
      if (MaxStates != O.MaxStates)
        return MaxStates < O.MaxStates;
      return Pi < O.Pi;
    }
  };

  const hist::Expr *projectionLocked(hist::HistContext &Ctx,
                                     const hist::Expr *E) SUS_REQUIRES(M);

  /// Leaf lock over the memo tables and stats. Held across a compliance
  /// product on a miss (the pre-warm serialization the parallel pipeline
  /// relies on), but never while calling back into user code, and no
  /// other lock is ever taken under it (FusedMonitors synchronizes
  /// itself and is deliberately outside M's scope).
  mutable Mutex M;
  VerifierStats Stats SUS_GUARDED_BY(M);
  std::map<const hist::Expr *, const hist::Expr *>
      Projections SUS_GUARDED_BY(M);
  std::map<std::pair<const hist::Expr *, const hist::Expr *>,
           contract::ComplianceResult>
      Compliances SUS_GUARDED_BY(M);
  std::map<ValidityKey, validity::StaticValidityResult>
      Validities SUS_GUARDED_BY(M);
  monitor::FusedCache FusedMonitors;
};

} // namespace core
} // namespace sus

#endif // SUS_CORE_VERIFIERCACHE_H
