//===- core/VerifierCache.cpp - Shared verification memo tables -----------===//

#include "core/VerifierCache.h"

using namespace sus;
using namespace sus::core;

const hist::Expr *VerifierCache::projectionLocked(hist::HistContext &Ctx,
                                                  const hist::Expr *E) {
  ++Stats.ProjectionLookups;
  auto It = Projections.find(E);
  if (It != Projections.end()) {
    ++Stats.ProjectionHits;
    return It->second;
  }
  const hist::Expr *P = contract::project(Ctx, E);
  Projections.emplace(E, P);
  return P;
}

const hist::Expr *VerifierCache::projection(hist::HistContext &Ctx,
                                            const hist::Expr *E) {
  std::lock_guard<std::mutex> Lock(M);
  return projectionLocked(Ctx, E);
}

contract::ComplianceResult
VerifierCache::compliance(hist::HistContext &Ctx,
                          const hist::Expr *RequestBody,
                          const hist::Expr *Service) {
  std::lock_guard<std::mutex> Lock(M);
  ++Stats.ComplianceLookups;
  auto Key = std::make_pair(RequestBody, Service);
  auto It = Compliances.find(Key);
  if (It != Compliances.end()) {
    ++Stats.ComplianceHits;
    return It->second;
  }
  contract::ComplianceResult R = contract::checkCompliance(
      Ctx, projectionLocked(Ctx, RequestBody), projectionLocked(Ctx, Service));
  Compliances.emplace(Key, R);
  return R;
}

std::optional<validity::StaticValidityResult>
VerifierCache::findValidity(const hist::Expr *Client, plan::Loc ClientLoc,
                            const plan::Plan &Pi, size_t MaxStates) {
  std::lock_guard<std::mutex> Lock(M);
  ++Stats.ValidityLookups;
  auto It = Validities.find(ValidityKey{Client, ClientLoc, Pi, MaxStates});
  if (It == Validities.end())
    return std::nullopt;
  ++Stats.ValidityHits;
  return It->second;
}

void VerifierCache::recordValidity(const hist::Expr *Client,
                                   plan::Loc ClientLoc, const plan::Plan &Pi,
                                   size_t MaxStates,
                                   validity::StaticValidityResult Result) {
  std::lock_guard<std::mutex> Lock(M);
  Validities.emplace(ValidityKey{Client, ClientLoc, Pi, MaxStates},
                     std::move(Result));
}

VerifierStats VerifierCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}
