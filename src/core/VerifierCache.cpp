//===- core/VerifierCache.cpp - Shared verification memo tables -----------===//

#include "core/VerifierCache.h"

#include "support/Metrics.h"

using namespace sus;
using namespace sus::core;

namespace {

/// Registry mirrors of VerifierStats: the same counts, visible in every
/// --metrics-out report without threading the cache to the exporter.
struct HitMissCounters {
  metrics::Counter &Hits;
  metrics::Counter &Misses;
  void count(bool Hit) { (Hit ? Hits : Misses).add(); }
};

HitMissCounters &complianceCounters() {
  static HitMissCounters C{metrics::counter("verifier.cache.compliance.hits"),
                           metrics::counter(
                               "verifier.cache.compliance.misses")};
  return C;
}

HitMissCounters &projectionCounters() {
  static HitMissCounters C{metrics::counter("verifier.cache.projection.hits"),
                           metrics::counter(
                               "verifier.cache.projection.misses")};
  return C;
}

HitMissCounters &validityCounters() {
  static HitMissCounters C{metrics::counter("verifier.cache.validity.hits"),
                           metrics::counter(
                               "verifier.cache.validity.misses")};
  return C;
}

} // namespace

const hist::Expr *VerifierCache::projectionLocked(hist::HistContext &Ctx,
                                                  const hist::Expr *E) {
  ++Stats.ProjectionLookups;
  auto It = Projections.find(E);
  if (It != Projections.end()) {
    ++Stats.ProjectionHits;
    projectionCounters().count(true);
    return It->second;
  }
  projectionCounters().count(false);
  const hist::Expr *P = contract::project(Ctx, E);
  Projections.emplace(E, P);
  return P;
}

const hist::Expr *VerifierCache::projection(hist::HistContext &Ctx,
                                            const hist::Expr *E) {
  MutexLock Lock(M);
  return projectionLocked(Ctx, E);
}

contract::ComplianceResult
VerifierCache::compliance(hist::HistContext &Ctx,
                          const hist::Expr *RequestBody,
                          const hist::Expr *Service,
                          const ResourceGovernor *Gov) {
  MutexLock Lock(M);
  ++Stats.ComplianceLookups;
  auto Key = std::make_pair(RequestBody, Service);
  auto It = Compliances.find(Key);
  if (It != Compliances.end()) {
    ++Stats.ComplianceHits;
    complianceCounters().count(true);
    return It->second;
  }
  complianceCounters().count(false);
  contract::ComplianceResult R =
      contract::checkCompliance(Ctx, projectionLocked(Ctx, RequestBody),
                                projectionLocked(Ctx, Service), Gov);
  // An exhausted product yields no verdict: hand the inconclusive result
  // back but keep it out of the memo, so a later unbounded lookup
  // recomputes instead of resurfacing the budget trip as truth.
  if (!R.Exhausted)
    Compliances.emplace(Key, R);
  return R;
}

std::optional<validity::StaticValidityResult>
VerifierCache::findValidity(const hist::Expr *Client, plan::Loc ClientLoc,
                            const plan::Plan &Pi, size_t MaxStates) {
  MutexLock Lock(M);
  ++Stats.ValidityLookups;
  auto It = Validities.find(ValidityKey{Client, ClientLoc, Pi, MaxStates});
  if (It == Validities.end()) {
    validityCounters().count(false);
    return std::nullopt;
  }
  ++Stats.ValidityHits;
  validityCounters().count(true);
  return It->second;
}

void VerifierCache::recordValidity(const hist::Expr *Client,
                                   plan::Loc ClientLoc, const plan::Plan &Pi,
                                   size_t MaxStates,
                                   validity::StaticValidityResult Result) {
  // Exhausted results are partial: caching one would turn a transient
  // budget trip into a permanently wrong verdict for this plan signature.
  if (Result.Failure == validity::PlanFailureKind::ResourceExhausted) {
#ifdef SUS_AUDIT
    assert(false && "resource-exhausted validity result must not be cached");
#endif
    return;
  }
  MutexLock Lock(M);
  Validities.emplace(ValidityKey{Client, ClientLoc, Pi, MaxStates},
                     std::move(Result));
}

VerifierCache::EvictionStats
VerifierCache::invalidate(const plan::RepositoryDelta &Delta,
                          const plan::Repository &Current) {
  EvictionStats Evicted;
  if (Delta.empty())
    return Evicted;

  const std::set<plan::Loc> Touched = Delta.touched();

  // The retired service exprs: unpublished by this delta *and* not still
  // published at any surviving location (hash-consed exprs alias).
  std::set<const hist::Expr *> Retired;
  for (const plan::ServiceChange &C : Delta.Changes)
    if (C.Old)
      Retired.insert(C.Old);
  for (const auto &[Location, Service] : Current.services())
    Retired.erase(Service);

  MutexLock Lock(M);
  for (auto It = Validities.begin(); It != Validities.end();)
    if (plan::planMentions(It->first.Pi, Touched)) {
      It = Validities.erase(It);
      ++Evicted.ValidityEvicted;
    } else {
      ++It;
    }
  for (auto It = Compliances.begin(); It != Compliances.end();)
    if (Retired.count(It->first.second)) {
      It = Compliances.erase(It);
      ++Evicted.ComplianceEvicted;
    } else {
      ++It;
    }
  for (const hist::Expr *Old : Retired) {
    Evicted.ProjectionEvicted += Projections.erase(Old);
  }

  static metrics::Counter &ValidityEvictions =
      metrics::counter("plan.cache.validity_evictions");
  static metrics::Counter &ComplianceEvictions =
      metrics::counter("plan.cache.compliance_evictions");
  static metrics::Counter &ProjectionEvictions =
      metrics::counter("plan.cache.projection_evictions");
  ValidityEvictions.add(Evicted.ValidityEvicted);
  ComplianceEvictions.add(Evicted.ComplianceEvicted);
  ProjectionEvictions.add(Evicted.ProjectionEvicted);
  return Evicted;
}

VerifierStats VerifierCache::stats() const {
  MutexLock Lock(M);
  return Stats;
}

VerifierCache::Entries VerifierCache::exportEntries() const {
  MutexLock Lock(M);
  Entries Out;
  Out.Projections.reserve(Projections.size());
  for (const auto &[E, P] : Projections)
    Out.Projections.emplace_back(E, P);
  Out.Compliances.reserve(Compliances.size());
  for (const auto &[Key, R] : Compliances)
    Out.Compliances.push_back({Key.first, Key.second, R});
  Out.Validities.reserve(Validities.size());
  for (const auto &[Key, R] : Validities)
    Out.Validities.push_back({Key.Client, Key.Loc, Key.Pi, Key.MaxStates, R});
  return Out;
}

size_t VerifierCache::absorb(const Entries &E) {
  MutexLock Lock(M);
  size_t Inserted = 0;
  for (const auto &[Expr, Proj] : E.Projections)
    Inserted += Projections.emplace(Expr, Proj).second;
  for (const ComplianceEntry &C : E.Compliances) {
    if (C.Result.Exhausted)
      continue; // Inconclusive results never enter the memo.
    Inserted +=
        Compliances.emplace(std::make_pair(C.RequestBody, C.Service), C.Result)
            .second;
  }
  for (const ValidityEntry &V : E.Validities) {
    if (V.Result.Failure == validity::PlanFailureKind::ResourceExhausted)
      continue;
    Inserted += Validities
                    .emplace(ValidityKey{V.Client, V.ClientLoc, V.Pi,
                                         V.MaxStates},
                             V.Result)
                    .second;
  }
  return Inserted;
}
