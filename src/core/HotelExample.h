//===- core/HotelExample.h - The paper's motivating example -----*- C++ -*-===//
///
/// \file
/// The §2 hotel-booking scenario, exactly as in Fig. 2: two clients C1 and
/// C2, a broker Br, four hotels S1–S4 and the Fig. 1 policy ϕ(bl,p,t).
/// Shared by the examples, the test suite and the benchmarks so every
/// paper claim is checked against one authoritative encoding.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_HOTELEXAMPLE_H
#define SUS_CORE_HOTELEXAMPLE_H

#include "hist/HistContext.h"
#include "plan/Plan.h"
#include "policy/UsageAutomaton.h"

namespace sus {
namespace core {

/// All the pieces of the Fig. 2 example.
struct HotelExample {
  hist::HistContext *Ctx = nullptr;

  // Locations.
  plan::Loc LC1, LC2, LBr, LS1, LS2, LS3, LS4;

  // Instantiated policies: ϕ1 = ϕ({s1},45,100), ϕ2 = ϕ({s1,s3},40,70).
  hist::PolicyRef Phi1, Phi2;

  // Behaviours.
  const hist::Expr *C1 = nullptr;
  const hist::Expr *C2 = nullptr;
  const hist::Expr *Br = nullptr;
  const hist::Expr *S1 = nullptr;
  const hist::Expr *S2 = nullptr;
  const hist::Expr *S3 = nullptr;
  const hist::Expr *S4 = nullptr;

  /// R = {ℓbr : Br, ℓs1 : S1, …, ℓs4 : S4}.
  plan::Repository Repo;

  /// Registry holding the Fig. 1 shape ϕ.
  policy::PolicyRegistry Registry;

  /// π1 = {1 ↦ ℓbr, 3 ↦ ℓs3} — the paper's valid plan for C1.
  plan::Plan pi1() const;
  /// π2 = {2 ↦ ℓbr, 3 ↦ ℓs2} — invalid: S2 is not compliant with Br.
  plan::Plan pi2() const;
  /// The third §2 plan: {2 ↦ ℓbr, 3 ↦ ℓs3} — compliant but S3 is
  /// black-listed by C2, so a policy violation occurs.
  plan::Plan pi3() const;
  /// The only valid plan for C2: {2 ↦ ℓbr, 3 ↦ ℓs4}.
  plan::Plan pi2Valid() const;
};

/// Builds the whole example inside \p Ctx.
HotelExample makeHotelExample(hist::HistContext &Ctx);

} // namespace core
} // namespace sus

#endif // SUS_CORE_HOTELEXAMPLE_H
