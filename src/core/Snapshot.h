//===- core/Snapshot.h - Persistent VerifierCache snapshots -----*- C++ -*-===//
///
/// \file
/// Whole-session snapshot save/load on top of the serialize/ layer: one
/// blob captures the repository signature, the VerifierCache memo tables
/// (projections, compliance verdicts with witnesses, static-validity
/// verdicts), the ServiceIndex summaries and the fused monitor DFAs, so
/// a restarted susd resumes with a warm cache (DESIGN.md §13).
///
/// Loading is *all-or-nothing*: every section is decoded and validated
/// into staging first, and only a fully valid snapshot is absorbed into
/// the live cache — a corrupt or mismatched snapshot leaves the cache
/// exactly as it was (the HistContext may have interned extra strings
/// and expressions, which is semantically inert under hash-consing).
///
/// A snapshot is bound to the repository it was cut from: the loader
/// re-interns the recorded (location, service) pairs and requires them
/// to match the live repository pointer-for-pointer. Cache keys are
/// hash-consed expression identities, so this check is exactly what
/// makes the absorbed verdicts meaningful. Churn between save and load
/// must therefore be replayed through Verifier::applyDelta *before*
/// saving (which evicts precisely the stale entries) — the snapshot
/// then records the already-invalidated state.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_CORE_SNAPSHOT_H
#define SUS_CORE_SNAPSHOT_H

#include "core/VerifierCache.h"
#include "plan/ServiceIndex.h"

#include <string>
#include <string_view>
#include <vector>

namespace sus {
namespace core {

/// What a snapshot holds (save) or held (load), for logs and tests.
struct SnapshotStats {
  size_t Strings = 0;
  size_t Exprs = 0;
  size_t Repository = 0;
  size_t Projections = 0;
  size_t Compliances = 0;
  size_t Validities = 0;
  size_t IndexEntries = 0;
  size_t FusedMonitors = 0;
  size_t Bytes = 0;
};

/// Serializes the session: repository signature, cache memo tables, the
/// index summaries (when \p Index is non-null) and the fused monitors.
std::string saveSnapshot(const hist::HistContext &Ctx,
                         const plan::Repository &Repo,
                         const VerifierCache &Cache,
                         const plan::ServiceIndex *Index = nullptr,
                         SnapshotStats *Stats = nullptr);

/// Outcome of loadSnapshot. On failure Error is a one-line diagnostic
/// and nothing was absorbed.
struct SnapshotLoadResult {
  bool Ok = false;
  std::string Error;
  SnapshotStats Stats;
  /// The persisted index summaries (empty when the snapshot carried
  /// none); feed to the ServiceIndex warm constructor.
  std::vector<plan::ServiceIndex::SnapshotEntry> IndexEntries;
};

/// Decodes \p Bytes, validates everything against \p Repo, and absorbs
/// the entries into \p Cache (existing live entries win). See the
/// all-or-nothing contract above.
SnapshotLoadResult loadSnapshot(std::string_view Bytes,
                                hist::HistContext &Ctx,
                                const plan::Repository &Repo,
                                VerifierCache &Cache);

} // namespace core
} // namespace sus

#endif // SUS_CORE_SNAPSHOT_H
