//===- serialize/Serialize.h - Versioned binary snapshot bytes --*- C++ -*-===//
///
/// \file
/// The byte layer of the persistent-cache snapshot format (DESIGN.md §13):
/// explicit little-endian primitives, a bounds-checked sticky-error Reader,
/// and a tagged-section container with a version header and per-section
/// FNV-1a checksums.
///
/// Container layout (all integers little-endian):
///
///   magic   8 bytes   "SUSSNAP\0"
///   version u32       FormatVersion
///   count   u32       number of sections
///   count × section:
///     tag      u32    SectionTag
///     length   u64    payload byte count
///     checksum u64    fnv1a64(payload)
///     payload  length bytes
///
/// Robustness contract: a loader fed a wrong-version, truncated or
/// bit-flipped snapshot must fail with a clean diagnostic — never UB,
/// never a crash. Everything here is therefore *strict*: unknown section
/// tags, duplicate tags, checksum mismatches and trailing bytes are all
/// hard errors, so any single corrupted byte is caught either by the
/// header checks, a checksum, or the per-field validation in the codecs
/// above this layer (serialize/Snapshot.h). The fuzz harness's corruption
/// oracle (src/fuzz) enforces this bit-for-bit.
///
/// Endianness: byte order is assembled and disassembled explicitly (shift
/// and mask, no memcpy of host integers), so snapshots written on any
/// machine load on any other.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SERIALIZE_SERIALIZE_H
#define SUS_SERIALIZE_SERIALIZE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sus {
namespace serialize {

/// Bumped on any incompatible layout change; loaders reject mismatches.
constexpr uint32_t FormatVersion = 1;

/// The 8-byte magic prefix of every snapshot.
constexpr char Magic[8] = {'S', 'U', 'S', 'S', 'N', 'A', 'P', '\0'};

/// Section tags of the v1 container. Tags are part of the format: a
/// reader encountering any other tag fails (strictness contract above).
enum class SectionTag : uint32_t {
  Strings = 1,     ///< Snapshot-local string table.
  Exprs = 2,       ///< Hash-consed expression pool.
  Repository = 3,  ///< (location, service) pairs the snapshot was cut from.
  Projections = 4, ///< VerifierCache projection memo.
  Compliances = 5, ///< VerifierCache compliance verdicts + witnesses.
  Validities = 6,  ///< VerifierCache static-validity verdicts.
  Index = 7,       ///< ServiceIndex per-service contract summaries.
  Fused = 8,       ///< Fused monitor DFAs.
};

/// FNV-1a 64-bit over \p Bytes (the per-section checksum).
uint64_t fnv1a64(std::string_view Bytes);

/// Appends explicit little-endian primitives to a byte buffer.
class Writer {
public:
  void putU8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void putU16(uint16_t V);
  void putU32(uint32_t V);
  void putU64(uint64_t V);
  void putI64(int64_t V) { putU64(static_cast<uint64_t>(V)); }
  void putBytes(std::string_view Bytes) { Buf.append(Bytes); }
  /// u32 length prefix + raw bytes.
  void putString(std::string_view Str);

  size_t size() const { return Buf.size(); }
  std::string take() { return std::move(Buf); }
  const std::string &bytes() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked reader with a sticky error. After any failure every
/// subsequent get* returns 0/empty, so decoders can batch their reads and
/// check failed() once per record — no partial value is ever interpreted.
class Reader {
public:
  explicit Reader(std::string_view Bytes) : Buf(Bytes) {}

  uint8_t getU8();
  uint16_t getU16();
  uint32_t getU32();
  uint64_t getU64();
  int64_t getI64() { return static_cast<int64_t>(getU64()); }
  /// \p N raw bytes; empty view on underrun.
  std::string_view getBytes(size_t N);
  /// u32 length prefix + raw bytes.
  std::string_view getString();

  /// Marks the reader failed with \p Msg (first failure wins).
  void fail(std::string Msg);

  bool failed() const { return Failed; }
  const std::string &error() const { return Err; }

  size_t remaining() const { return Failed ? 0 : Buf.size() - Pos; }
  bool atEnd() const { return Failed || Pos == Buf.size(); }

  /// Sanity-checks an upcoming \p Count records of at least
  /// \p MinRecordSize bytes each against the remaining input, failing
  /// with a "\p What count corrupt" diagnostic when they cannot fit —
  /// the guard that keeps a corrupted count from driving a huge
  /// allocation or a long loop of doomed reads.
  bool checkCount(uint64_t Count, size_t MinRecordSize, const char *What);

private:
  bool need(size_t N);

  std::string_view Buf;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
};

/// Assembles a whole snapshot: header + tagged, checksummed sections.
class SectionWriter {
public:
  /// Appends one section. Tags must be distinct (the reader rejects
  /// duplicates).
  void addSection(SectionTag Tag, std::string Payload);

  /// The finished snapshot bytes.
  std::string finish() const;

private:
  std::vector<std::pair<SectionTag, std::string>> Sections;
};

/// Parses and validates a whole snapshot container. Construction runs
/// every header, tag, bounds and checksum check; decoding of section
/// payloads is the codecs' job.
class SectionReader {
public:
  explicit SectionReader(std::string_view Bytes);

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  /// The payload of \p Tag, or std::nullopt when the snapshot has no such
  /// section. Views into the constructor's input; the caller keeps the
  /// bytes alive.
  std::optional<std::string_view> section(SectionTag Tag) const;

private:
  std::string Err;
  std::vector<std::pair<SectionTag, std::string_view>> Sections;
};

} // namespace serialize
} // namespace sus

#endif // SUS_SERIALIZE_SERIALIZE_H
