//===- serialize/Snapshot.cpp - Codecs for the snapshot sections ----------===//

#include "serialize/Snapshot.h"

#include "support/Casting.h"

#include <algorithm>

using namespace sus;
using namespace sus::serialize;
using namespace sus::hist;

//===----------------------------------------------------------------------===//
// SymbolTable
//===----------------------------------------------------------------------===//

uint32_t SymbolTable::idOf(Symbol S) {
  if (!S.isValid())
    return NoId;
  auto It = Ids.find(S);
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Order.size());
  Ids.emplace(S, Id);
  Order.push_back(S);
  return Id;
}

std::string SymbolTable::payload() const {
  Writer W;
  W.putU32(static_cast<uint32_t>(Order.size()));
  for (Symbol S : Order)
    W.putString(Interner.text(S));
  return W.take();
}

//===----------------------------------------------------------------------===//
// ExprEncoder
//===----------------------------------------------------------------------===//

uint32_t ExprEncoder::idOf(const Expr *E) {
  if (!E)
    return NoId;
  auto Known = Ids.find(E);
  if (Known != Ids.end())
    return Known->second;

  // Iterative post-order so children always receive smaller ids than
  // their parents and deep right-nested sequences cannot overflow the
  // call stack.
  std::vector<std::pair<const Expr *, bool>> Stack;
  Stack.emplace_back(E, false);
  while (!Stack.empty()) {
    auto [X, Visited] = Stack.back();
    Stack.pop_back();
    if (Ids.count(X))
      continue;
    if (Visited) {
      Ids.emplace(X, static_cast<uint32_t>(Order.size()));
      Order.push_back(X);
      continue;
    }
    Stack.emplace_back(X, true);
    switch (X->kind()) {
    case ExprKind::Empty:
    case ExprKind::Var:
    case ExprKind::Event:
    case ExprKind::CloseMark:
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      break;
    case ExprKind::Mu:
      Stack.emplace_back(cast<MuExpr>(X)->body(), false);
      break;
    case ExprKind::Seq:
      Stack.emplace_back(cast<SeqExpr>(X)->head(), false);
      Stack.emplace_back(cast<SeqExpr>(X)->tail(), false);
      break;
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice:
      for (const ChoiceBranch &B : cast<ChoiceExpr>(X)->branches())
        Stack.emplace_back(B.Body, false);
      break;
    case ExprKind::Request:
      Stack.emplace_back(cast<RequestExpr>(X)->body(), false);
      break;
    case ExprKind::Framing:
      Stack.emplace_back(cast<FramingExpr>(X)->body(), false);
      break;
    }
  }
  return Ids.at(E);
}

void ExprEncoder::encodeInto(Writer &W, const Expr *E) const {
  W.putU8(static_cast<uint8_t>(E->kind()));
  switch (E->kind()) {
  case ExprKind::Empty:
    break;
  case ExprKind::Var:
    W.putU32(Strings.idOf(cast<VarExpr>(E)->name()));
    break;
  case ExprKind::Mu: {
    const auto *M = cast<MuExpr>(E);
    W.putU32(Strings.idOf(M->var()));
    W.putU32(Ids.at(M->body()));
    break;
  }
  case ExprKind::Event:
    encodeEvent(W, Strings, cast<EventExpr>(E)->event());
    break;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    W.putU32(Ids.at(S->head()));
    W.putU32(Ids.at(S->tail()));
    break;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice: {
    const auto *C = cast<ChoiceExpr>(E);
    W.putU32(static_cast<uint32_t>(C->numBranches()));
    for (const ChoiceBranch &B : C->branches()) {
      encodeCommAction(W, Strings, B.Guard);
      W.putU32(Ids.at(B.Body));
    }
    break;
  }
  case ExprKind::Request: {
    const auto *Rq = cast<RequestExpr>(E);
    W.putU32(Rq->request());
    encodePolicyRef(W, Strings, Rq->policy());
    W.putU32(Ids.at(Rq->body()));
    break;
  }
  case ExprKind::Framing: {
    const auto *F = cast<FramingExpr>(E);
    encodePolicyRef(W, Strings, F->policy());
    W.putU32(Ids.at(F->body()));
    break;
  }
  case ExprKind::CloseMark: {
    const auto *C = cast<CloseMarkExpr>(E);
    W.putU32(C->request());
    encodePolicyRef(W, Strings, C->policy());
    break;
  }
  case ExprKind::FrameOpen:
    encodePolicyRef(W, Strings, cast<FrameOpenExpr>(E)->policy());
    break;
  case ExprKind::FrameClose:
    encodePolicyRef(W, Strings, cast<FrameCloseExpr>(E)->policy());
    break;
  }
}

std::string ExprEncoder::payload() const {
  Writer W;
  W.putU32(static_cast<uint32_t>(Order.size()));
  for (const Expr *E : Order)
    encodeInto(W, E);
  return W.take();
}

//===----------------------------------------------------------------------===//
// Scalar encoders
//===----------------------------------------------------------------------===//

void sus::serialize::encodeValue(Writer &W, SymbolTable &Strings,
                                 const Value &V) {
  W.putU8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::None:
    break;
  case Value::Kind::Int:
    W.putI64(V.asInt());
    break;
  case Value::Kind::Name:
    W.putU32(Strings.idOf(V.asName()));
    break;
  }
}

void sus::serialize::encodeCommAction(Writer &W, SymbolTable &Strings,
                                      CommAction A) {
  W.putU32(Strings.idOf(A.Channel));
  W.putU8(static_cast<uint8_t>(A.Pol));
}

void sus::serialize::encodeEvent(Writer &W, SymbolTable &Strings,
                                 const Event &Ev) {
  W.putU32(Strings.idOf(Ev.Name));
  encodeValue(W, Strings, Ev.Arg);
}

void sus::serialize::encodePolicyRef(Writer &W, SymbolTable &Strings,
                                     const PolicyRef &Ref) {
  W.putU32(Strings.idOf(Ref.Name));
  W.putU32(static_cast<uint32_t>(Ref.Args.size()));
  for (const std::vector<Value> &Arg : Ref.Args) {
    W.putU32(static_cast<uint32_t>(Arg.size()));
    for (const Value &V : Arg)
      encodeValue(W, Strings, V);
  }
}

void sus::serialize::encodeReadySet(Writer &W, SymbolTable &Strings,
                                    const contract::ReadySet &S) {
  W.putU32(static_cast<uint32_t>(S.size()));
  for (const CommAction &A : S)
    encodeCommAction(W, Strings, A);
}

void sus::serialize::encodeSummary(Writer &W, SymbolTable &Strings,
                                   const contract::ContractSummary &Summary) {
  W.putU8(Summary.Screenable ? 1 : 0);
  W.putU8(Summary.NeedsSync ? 1 : 0);
  W.putU32(static_cast<uint32_t>(Summary.InitialSets.size()));
  for (const contract::ReadySet &S : Summary.InitialSets)
    encodeReadySet(W, Strings, S);
  encodeReadySet(W, Strings, Summary.Alphabet);
  encodeReadySet(W, Strings, Summary.IndexKey);
}

void sus::serialize::encodeDfa(Writer &W, const automata::Dfa &D) {
  W.putU32(static_cast<uint32_t>(D.numStates()));
  W.putU32(D.start());
  for (automata::StateId S = 0; S < D.numStates(); ++S)
    W.putU8(D.isAccepting(S) ? 1 : 0);
  const std::vector<automata::SymbolCode> &Syms = D.alphabet();
  W.putU32(static_cast<uint32_t>(Syms.size()));
  for (automata::SymbolCode C : Syms)
    W.putU32(C);
  for (automata::StateId S = 0; S < D.numStates(); ++S)
    for (uint32_t Idx = 0; Idx < Syms.size(); ++Idx)
      W.putU32(D.stepIndex(S, Idx));
}

void sus::serialize::encodeCompliance(Writer &W, SymbolTable &Strings,
                                      ExprEncoder &Exprs,
                                      const contract::ComplianceResult &R) {
  assert(!R.Exhausted && "inconclusive results are never serialized");
  W.putU8(R.Compliant ? 1 : 0);
  W.putU8(R.Witness ? 1 : 0);
  if (R.Witness) {
    W.putU32(static_cast<uint32_t>(R.Witness->Path.size()));
    for (const CommAction &A : R.Witness->Path)
      encodeCommAction(W, Strings, A);
    W.putU32(Exprs.idOf(R.Witness->ClientStuck));
    W.putU32(Exprs.idOf(R.Witness->ServerStuck));
  }
  W.putU64(R.ExploredStates);
}

void sus::serialize::encodeValidity(Writer &W, SymbolTable &Strings,
                                    const validity::StaticValidityResult &R) {
  assert(R.Failure != validity::PlanFailureKind::ResourceExhausted &&
         "inconclusive results are never serialized");
  W.putU8(R.Valid ? 1 : 0);
  W.putU8(static_cast<uint8_t>(R.Failure));
  W.putU8(R.Policy ? 1 : 0);
  if (R.Policy)
    encodePolicyRef(W, Strings, *R.Policy);
  W.putU8(R.Request ? 1 : 0);
  if (R.Request)
    W.putU32(*R.Request);
  W.putU32(static_cast<uint32_t>(R.Trace.size()));
  for (const std::string &Step : R.Trace)
    W.putString(Step);
  W.putU64(R.ExploredStates);
  W.putU8(R.HasStuckConfiguration ? 1 : 0);
}

void sus::serialize::encodeFused(Writer &W, SymbolTable &Strings,
                                 const monitor::FusedPolicyAutomaton &F) {
  encodeDfa(W, F.Automaton);
  W.putU32(static_cast<uint32_t>(F.OffendingMask.size()));
  for (uint32_t Mask : F.OffendingMask)
    W.putU32(Mask);
  W.putU32(static_cast<uint32_t>(F.Policies.size()));
  for (const PolicyRef &Ref : F.Policies)
    encodePolicyRef(W, Strings, Ref);
  W.putU32(static_cast<uint32_t>(F.UnknownPolicies.size()));
  for (const PolicyRef &Ref : F.UnknownPolicies)
    encodePolicyRef(W, Strings, Ref);
  W.putU32(static_cast<uint32_t>(F.Universe.size()));
  for (const Event &Ev : F.Universe)
    encodeEvent(W, Strings, Ev);
}

//===----------------------------------------------------------------------===//
// SymbolDecoder / ExprDecoder
//===----------------------------------------------------------------------===//

SymbolDecoder::SymbolDecoder(Reader &R, StringInterner &Interner) {
  uint32_t Count = R.getU32();
  if (!R.checkCount(Count, 4, "string"))
    return;
  Symbols.reserve(Count);
  for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
    std::string_view Text = R.getString();
    if (R.failed())
      return;
    Symbols.push_back(Interner.intern(Text));
  }
}

Symbol SymbolDecoder::symbol(uint32_t Id, Reader &R) const {
  if (Id == NoId)
    return Symbol();
  if (Id >= Symbols.size()) {
    R.fail("string reference " + std::to_string(Id) + " out of range");
    return Symbol();
  }
  return Symbols[Id];
}

ExprDecoder::ExprDecoder(Reader &R, const SymbolDecoder &Strings,
                         HistContext &Ctx) {
  uint32_t Count = R.getU32();
  if (!R.checkCount(Count, 1, "expression"))
    return;
  Exprs.reserve(Count);
  for (uint32_t I = 0; I < Count && !R.failed(); ++I) {
    const Expr *E = decodeOne(R, Strings, Ctx);
    if (R.failed())
      return;
    Exprs.push_back(E);
  }
}

const Expr *ExprDecoder::expr(uint32_t Id, Reader &R) const {
  if (Id == NoId)
    return nullptr;
  if (Id >= Exprs.size()) {
    R.fail("expression reference " + std::to_string(Id) + " out of range");
    return nullptr;
  }
  return Exprs[Id];
}

const Expr *ExprDecoder::decodeOne(Reader &R, const SymbolDecoder &Strings,
                                   HistContext &Ctx) const {
  uint8_t KindByte = R.getU8();
  if (R.failed())
    return nullptr;
  if (KindByte > static_cast<uint8_t>(ExprKind::FrameClose)) {
    R.fail("corrupt expression kind " + std::to_string(KindByte));
    return nullptr;
  }
  // Child references only point at earlier pool slots (topological order
  // is a format invariant), which expr() enforces by bounds-checking
  // against the pool decoded so far.
  switch (static_cast<ExprKind>(KindByte)) {
  case ExprKind::Empty:
    return Ctx.empty();
  case ExprKind::Var: {
    Symbol Name = Strings.symbol(R.getU32(), R);
    if (R.failed())
      return nullptr;
    if (!Name.isValid()) {
      R.fail("recursion variable without a name");
      return nullptr;
    }
    return Ctx.var(Name);
  }
  case ExprKind::Mu: {
    Symbol Var = Strings.symbol(R.getU32(), R);
    const Expr *Body = expr(R.getU32(), R);
    if (R.failed())
      return nullptr;
    if (!Var.isValid()) {
      R.fail("mu binder without a variable name");
      return nullptr;
    }
    return Ctx.mu(Var, Body);
  }
  case ExprKind::Event: {
    Event Ev = decodeEvent(R, Strings);
    if (R.failed())
      return nullptr;
    return Ctx.event(Ev);
  }
  case ExprKind::Seq: {
    const Expr *Head = expr(R.getU32(), R);
    const Expr *Tail = expr(R.getU32(), R);
    if (R.failed())
      return nullptr;
    return Ctx.seq(Head, Tail);
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice: {
    bool External = KindByte == static_cast<uint8_t>(ExprKind::ExtChoice);
    uint32_t N = R.getU32();
    if (!R.checkCount(N, 9, "choice branch"))
      return nullptr;
    if (N == 0) {
      R.fail("choice with no branches");
      return nullptr;
    }
    std::vector<ChoiceBranch> Branches;
    Branches.reserve(N);
    for (uint32_t I = 0; I < N; ++I) {
      CommAction Guard = decodeCommAction(R, Strings);
      const Expr *Body = expr(R.getU32(), R);
      if (R.failed())
        return nullptr;
      // The factories assert guard polarity; a corrupt snapshot must be
      // rejected here instead.
      if (Guard.isInput() != External) {
        R.fail("choice guard polarity does not match the choice kind");
        return nullptr;
      }
      Branches.push_back({Guard, Body});
    }
    return External ? Ctx.extChoice(std::move(Branches))
                    : Ctx.intChoice(std::move(Branches));
  }
  case ExprKind::Request: {
    RequestId Req = R.getU32();
    PolicyRef Policy = decodePolicyRef(R, Strings);
    const Expr *Body = expr(R.getU32(), R);
    if (R.failed())
      return nullptr;
    return Ctx.request(Req, std::move(Policy), Body);
  }
  case ExprKind::Framing: {
    PolicyRef Policy = decodePolicyRef(R, Strings);
    const Expr *Body = expr(R.getU32(), R);
    if (R.failed())
      return nullptr;
    return Ctx.framing(std::move(Policy), Body);
  }
  case ExprKind::CloseMark: {
    RequestId Req = R.getU32();
    PolicyRef Policy = decodePolicyRef(R, Strings);
    if (R.failed())
      return nullptr;
    return Ctx.closeMark(Req, std::move(Policy));
  }
  case ExprKind::FrameOpen: {
    PolicyRef Policy = decodePolicyRef(R, Strings);
    if (R.failed())
      return nullptr;
    return Ctx.frameOpen(std::move(Policy));
  }
  case ExprKind::FrameClose: {
    PolicyRef Policy = decodePolicyRef(R, Strings);
    if (R.failed())
      return nullptr;
    return Ctx.frameClose(std::move(Policy));
  }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Scalar decoders
//===----------------------------------------------------------------------===//

Value sus::serialize::decodeValue(Reader &R, const SymbolDecoder &Strings) {
  uint8_t Kind = R.getU8();
  switch (Kind) {
  case static_cast<uint8_t>(Value::Kind::None):
    return Value();
  case static_cast<uint8_t>(Value::Kind::Int):
    return Value::integer(R.getI64());
  case static_cast<uint8_t>(Value::Kind::Name): {
    Symbol S = Strings.symbol(R.getU32(), R);
    if (!S.isValid()) {
      R.fail("named value without a name");
      return Value();
    }
    return Value::name(S);
  }
  default:
    if (!R.failed())
      R.fail("corrupt value kind " + std::to_string(Kind));
    return Value();
  }
}

CommAction sus::serialize::decodeCommAction(Reader &R,
                                            const SymbolDecoder &Strings) {
  Symbol Channel = Strings.symbol(R.getU32(), R);
  uint8_t Pol = R.getU8();
  if (R.failed())
    return CommAction();
  if (!Channel.isValid()) {
    R.fail("communication action without a channel");
    return CommAction();
  }
  if (Pol > static_cast<uint8_t>(Polarity::Output)) {
    R.fail("corrupt action polarity " + std::to_string(Pol));
    return CommAction();
  }
  return CommAction{Channel, static_cast<Polarity>(Pol)};
}

Event sus::serialize::decodeEvent(Reader &R, const SymbolDecoder &Strings) {
  Symbol Name = Strings.symbol(R.getU32(), R);
  Value Arg = decodeValue(R, Strings);
  if (R.failed())
    return Event();
  if (!Name.isValid()) {
    R.fail("event without a name");
    return Event();
  }
  return Event{Name, Arg};
}

PolicyRef sus::serialize::decodePolicyRef(Reader &R,
                                          const SymbolDecoder &Strings) {
  PolicyRef Ref;
  Ref.Name = Strings.symbol(R.getU32(), R);
  uint32_t NArgs = R.getU32();
  if (!R.checkCount(NArgs, 4, "policy argument"))
    return Ref;
  Ref.Args.reserve(NArgs);
  for (uint32_t I = 0; I < NArgs && !R.failed(); ++I) {
    uint32_t NVals = R.getU32();
    if (!R.checkCount(NVals, 1, "policy argument value"))
      return Ref;
    std::vector<Value> Vals;
    Vals.reserve(NVals);
    for (uint32_t J = 0; J < NVals && !R.failed(); ++J)
      Vals.push_back(decodeValue(R, Strings));
    Ref.Args.push_back(std::move(Vals));
  }
  return Ref;
}

contract::ReadySet sus::serialize::decodeReadySet(
    Reader &R, const SymbolDecoder &Strings) {
  contract::ReadySet Out;
  uint32_t N = R.getU32();
  if (!R.checkCount(N, 5, "ready-set action"))
    return Out;
  for (uint32_t I = 0; I < N && !R.failed(); ++I)
    Out.insert(decodeCommAction(R, Strings));
  return Out;
}

contract::ContractSummary sus::serialize::decodeSummary(
    Reader &R, const SymbolDecoder &Strings) {
  contract::ContractSummary S;
  uint8_t Screenable = R.getU8();
  uint8_t NeedsSync = R.getU8();
  if (Screenable > 1 || NeedsSync > 1) {
    R.fail("corrupt contract-summary flags");
    return S;
  }
  S.Screenable = Screenable != 0;
  S.NeedsSync = NeedsSync != 0;
  uint32_t NSets = R.getU32();
  if (!R.checkCount(NSets, 4, "ready set"))
    return S;
  S.InitialSets.reserve(NSets);
  for (uint32_t I = 0; I < NSets && !R.failed(); ++I)
    S.InitialSets.push_back(decodeReadySet(R, Strings));
  S.Alphabet = decodeReadySet(R, Strings);
  S.IndexKey = decodeReadySet(R, Strings);
  return S;
}

automata::Dfa sus::serialize::decodeDfa(Reader &R) {
  automata::Dfa D;
  uint32_t NumStates = R.getU32();
  uint32_t Start = R.getU32();
  if (!R.checkCount(NumStates, 1, "dfa state"))
    return D;
  if (NumStates == 0) {
    R.fail("dfa with no states");
    return D;
  }
  if (Start >= NumStates) {
    R.fail("dfa start state out of range");
    return D;
  }
  std::vector<bool> Accepting(NumStates);
  for (uint32_t S = 0; S < NumStates && !R.failed(); ++S) {
    uint8_t A = R.getU8();
    if (A > 1) {
      R.fail("corrupt dfa accepting flag");
      return D;
    }
    Accepting[S] = A != 0;
  }
  uint32_t NumSyms = R.getU32();
  if (!R.checkCount(NumSyms, 4, "dfa symbol"))
    return D;
  std::vector<automata::SymbolCode> Syms;
  Syms.reserve(NumSyms);
  for (uint32_t I = 0; I < NumSyms && !R.failed(); ++I) {
    automata::SymbolCode C = R.getU32();
    if (!Syms.empty() && C <= Syms.back()) {
      R.fail("dfa alphabet not strictly ascending");
      return D;
    }
    Syms.push_back(C);
  }
  uint64_t Cells = static_cast<uint64_t>(NumStates) * NumSyms;
  if (!R.checkCount(Cells, 4, "dfa transition"))
    return D;
  if (R.failed())
    return D;
  for (uint32_t S = 0; S < NumStates; ++S)
    D.addState(Accepting[S]);
  D.reserveAlphabet(Syms);
  D.setStart(Start);
  for (uint32_t S = 0; S < NumStates; ++S)
    for (uint32_t Idx = 0; Idx < NumSyms; ++Idx) {
      automata::StateId T = R.getU32();
      if (R.failed())
        return D;
      if (T == automata::Dfa::NoState)
        continue;
      if (T >= NumStates) {
        R.fail("dfa transition target out of range");
        return D;
      }
      D.setEdge(S, Syms[Idx], T);
    }
  return D;
}

contract::ComplianceResult sus::serialize::decodeCompliance(
    Reader &R, const SymbolDecoder &Strings, const ExprDecoder &Exprs) {
  contract::ComplianceResult Out;
  uint8_t Compliant = R.getU8();
  uint8_t HasWitness = R.getU8();
  if (Compliant > 1 || HasWitness > 1) {
    R.fail("corrupt compliance flags");
    return Out;
  }
  Out.Compliant = Compliant != 0;
  if (HasWitness) {
    contract::ComplianceWitness W;
    uint32_t PathLen = R.getU32();
    if (!R.checkCount(PathLen, 5, "witness action"))
      return Out;
    W.Path.reserve(PathLen);
    for (uint32_t I = 0; I < PathLen && !R.failed(); ++I)
      W.Path.push_back(decodeCommAction(R, Strings));
    W.ClientStuck = Exprs.expr(R.getU32(), R);
    W.ServerStuck = Exprs.expr(R.getU32(), R);
    Out.Witness = std::move(W);
  }
  Out.ExploredStates = R.getU64();
  return Out;
}

validity::StaticValidityResult sus::serialize::decodeValidity(
    Reader &R, const SymbolDecoder &Strings) {
  validity::StaticValidityResult Out;
  uint8_t Valid = R.getU8();
  uint8_t Failure = R.getU8();
  if (Valid > 1 ||
      Failure >= static_cast<uint8_t>(
                     validity::PlanFailureKind::ResourceExhausted)) {
    // ResourceExhausted results are partial and never serialized, so the
    // byte is as corrupt as any out-of-range one.
    R.fail("corrupt validity verdict");
    return Out;
  }
  Out.Valid = Valid != 0;
  Out.Failure = static_cast<validity::PlanFailureKind>(Failure);
  uint8_t HasPolicy = R.getU8();
  if (HasPolicy > 1) {
    R.fail("corrupt validity policy flag");
    return Out;
  }
  if (HasPolicy)
    Out.Policy = decodePolicyRef(R, Strings);
  uint8_t HasRequest = R.getU8();
  if (HasRequest > 1) {
    R.fail("corrupt validity request flag");
    return Out;
  }
  if (HasRequest)
    Out.Request = R.getU32();
  uint32_t NTrace = R.getU32();
  if (!R.checkCount(NTrace, 4, "trace step"))
    return Out;
  Out.Trace.reserve(NTrace);
  for (uint32_t I = 0; I < NTrace && !R.failed(); ++I)
    Out.Trace.emplace_back(R.getString());
  Out.ExploredStates = R.getU64();
  uint8_t HasStuck = R.getU8();
  if (HasStuck > 1) {
    R.fail("corrupt validity stuck flag");
    return Out;
  }
  Out.HasStuckConfiguration = HasStuck != 0;
  return Out;
}

monitor::FusedPolicyAutomaton sus::serialize::decodeFused(
    Reader &R, const SymbolDecoder &Strings) {
  monitor::FusedPolicyAutomaton F;
  F.Automaton = decodeDfa(R);
  if (R.failed())
    return F;
  uint32_t NMasks = R.getU32();
  if (NMasks != F.Automaton.numStates()) {
    if (!R.failed())
      R.fail("fused monitor mask count does not match its state count");
    return F;
  }
  F.OffendingMask.reserve(NMasks);
  for (uint32_t I = 0; I < NMasks && !R.failed(); ++I)
    F.OffendingMask.push_back(R.getU32());
  auto DecodeRefs = [&](const char *What) {
    std::vector<PolicyRef> Refs;
    uint32_t N = R.getU32();
    if (!R.checkCount(N, 8, What))
      return Refs;
    Refs.reserve(N);
    for (uint32_t I = 0; I < N && !R.failed(); ++I) {
      PolicyRef Ref = decodePolicyRef(R, Strings);
      if (Ref.isTrivial()) {
        R.fail("fused monitor lists a trivial policy");
        return Refs;
      }
      if (!Refs.empty() && !(Refs.back() < Ref)) {
        R.fail("fused monitor policies not strictly sorted");
        return Refs;
      }
      Refs.push_back(std::move(Ref));
    }
    return Refs;
  };
  F.Policies = DecodeRefs("fused policy");
  if (R.failed())
    return F;
  if (F.Policies.size() > monitor::FusedPolicyAutomaton::MaxPolicies) {
    R.fail("fused monitor exceeds the policy width cap");
    return F;
  }
  F.UnknownPolicies = DecodeRefs("fused unknown policy");
  if (R.failed())
    return F;
  uint32_t NUniverse = R.getU32();
  if (!R.checkCount(NUniverse, 5, "fused universe event"))
    return F;
  F.Universe.reserve(NUniverse);
  for (uint32_t I = 0; I < NUniverse && !R.failed(); ++I) {
    Event Ev = decodeEvent(R, Strings);
    if (R.failed())
      return F;
    if (!F.Universe.empty() && !(F.Universe.back() < Ev)) {
      R.fail("fused monitor universe not strictly sorted");
      return F;
    }
    F.Universe.push_back(Ev);
  }
  if (R.failed())
    return F;

  // Structural validation: symbol code i must be Universe[i] (dense codes
  // make the compact alphabet index equal the code), the transition
  // function must be total, the mask bits must fit the fused policy
  // count, and a state is accepting exactly when some policy is
  // offending there (how fusePolicies builds the product).
  const automata::Dfa &D = F.Automaton;
  if (D.numSymbols() != F.Universe.size()) {
    R.fail("fused monitor alphabet does not match its universe");
    return F;
  }
  for (uint32_t Idx = 0; Idx < D.numSymbols(); ++Idx)
    if (D.alphabet()[Idx] != Idx) {
      R.fail("fused monitor symbol codes are not dense");
      return F;
    }
  uint64_t MaskLimit =
      F.Policies.size() >= 32 ? ~uint64_t(0)
                              : ((uint64_t(1) << F.Policies.size()) - 1);
  for (automata::StateId S = 0; S < D.numStates(); ++S) {
    if (F.OffendingMask[S] > MaskLimit) {
      R.fail("fused monitor offending mask names an absent policy");
      return F;
    }
    if (D.isAccepting(S) != (F.OffendingMask[S] != 0)) {
      R.fail("fused monitor acceptance disagrees with its masks");
      return F;
    }
    for (uint32_t Idx = 0; Idx < D.numSymbols(); ++Idx)
      if (D.stepIndex(S, Idx) == automata::Dfa::NoState) {
        R.fail("fused monitor transition function is not total");
        return F;
      }
  }

  for (uint32_t Idx = 0; Idx < F.Universe.size(); ++Idx)
    F.EventIndex.emplace(F.Universe[Idx], Idx);

  // The fingerprint is keyed on the *canonical* request — the merged
  // instantiable + unknown policy list — which fusePolicies computes
  // before splitting the two. Both lists are sorted and (trivially,
  // being strictly sorted per list and disjoint by construction)
  // mergeable back into canonical form.
  std::vector<PolicyRef> AllRefs;
  AllRefs.reserve(F.Policies.size() + F.UnknownPolicies.size());
  std::merge(F.Policies.begin(), F.Policies.end(), F.UnknownPolicies.begin(),
             F.UnknownPolicies.end(), std::back_inserter(AllRefs));
  for (size_t I = 1; I < AllRefs.size(); ++I)
    if (!(AllRefs[I - 1] < AllRefs[I])) {
      R.fail("fused monitor policy lists overlap");
      return F;
    }
  F.Fingerprint = monitor::policySetFingerprint(AllRefs, F.Universe);
  return F;
}
