//===- serialize/Serialize.cpp - Versioned binary snapshot bytes ----------===//

#include "serialize/Serialize.h"

#include <algorithm>

using namespace sus;
using namespace sus::serialize;

uint64_t sus::serialize::fnv1a64(std::string_view Bytes) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (char C : Bytes) {
    Hash ^= static_cast<uint8_t>(C);
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void Writer::putU16(uint16_t V) {
  putU8(static_cast<uint8_t>(V));
  putU8(static_cast<uint8_t>(V >> 8));
}

void Writer::putU32(uint32_t V) {
  putU8(static_cast<uint8_t>(V));
  putU8(static_cast<uint8_t>(V >> 8));
  putU8(static_cast<uint8_t>(V >> 16));
  putU8(static_cast<uint8_t>(V >> 24));
}

void Writer::putU64(uint64_t V) {
  putU32(static_cast<uint32_t>(V));
  putU32(static_cast<uint32_t>(V >> 32));
}

void Writer::putString(std::string_view Str) {
  putU32(static_cast<uint32_t>(Str.size()));
  putBytes(Str);
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

bool Reader::need(size_t N) {
  if (Failed)
    return false;
  if (Buf.size() - Pos < N) {
    fail("unexpected end of snapshot data");
    return false;
  }
  return true;
}

void Reader::fail(std::string Msg) {
  if (!Failed) {
    Failed = true;
    Err = std::move(Msg);
  }
}

uint8_t Reader::getU8() {
  if (!need(1))
    return 0;
  return static_cast<uint8_t>(Buf[Pos++]);
}

uint16_t Reader::getU16() {
  // Whole-width bounds check first: an underrun must yield 0, never a
  // value assembled from the bytes that did fit.
  if (!need(2))
    return 0;
  uint16_t Lo = getU8();
  uint16_t Hi = getU8();
  return static_cast<uint16_t>(Lo | (Hi << 8));
}

uint32_t Reader::getU32() {
  if (!need(4))
    return 0;
  // Fetch bytes before assembling: evaluation order of | operands is
  // unspecified, so each byte is pulled through a named sequence point.
  uint32_t B0 = getU8();
  uint32_t B1 = getU8();
  uint32_t B2 = getU8();
  uint32_t B3 = getU8();
  return B0 | (B1 << 8) | (B2 << 16) | (B3 << 24);
}

uint64_t Reader::getU64() {
  if (!need(8))
    return 0;
  uint64_t Lo = getU32();
  uint64_t Hi = getU32();
  return Lo | (Hi << 32);
}

std::string_view Reader::getBytes(size_t N) {
  if (!need(N))
    return {};
  std::string_view Out = Buf.substr(Pos, N);
  Pos += N;
  return Out;
}

std::string_view Reader::getString() {
  uint32_t Len = getU32();
  return getBytes(Len);
}

bool Reader::checkCount(uint64_t Count, size_t MinRecordSize,
                        const char *What) {
  if (Failed)
    return false;
  uint64_t Min = MinRecordSize == 0 ? 1 : MinRecordSize;
  if (Count > remaining() / Min) {
    fail(std::string(What) + " count corrupt (" + std::to_string(Count) +
         " records cannot fit in " + std::to_string(remaining()) +
         " remaining bytes)");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SectionWriter / SectionReader
//===----------------------------------------------------------------------===//

void SectionWriter::addSection(SectionTag Tag, std::string Payload) {
  Sections.emplace_back(Tag, std::move(Payload));
}

std::string SectionWriter::finish() const {
  Writer W;
  W.putBytes(std::string_view(Magic, sizeof(Magic)));
  W.putU32(FormatVersion);
  W.putU32(static_cast<uint32_t>(Sections.size()));
  for (const auto &[Tag, Payload] : Sections) {
    W.putU32(static_cast<uint32_t>(Tag));
    W.putU64(Payload.size());
    W.putU64(fnv1a64(Payload));
    W.putBytes(Payload);
  }
  return W.take();
}

namespace {

bool knownTag(uint32_t Tag) {
  return Tag >= static_cast<uint32_t>(SectionTag::Strings) &&
         Tag <= static_cast<uint32_t>(SectionTag::Fused);
}

} // namespace

SectionReader::SectionReader(std::string_view Bytes) {
  Reader R(Bytes);
  std::string_view Head = R.getBytes(sizeof(Magic));
  if (R.failed() || Head != std::string_view(Magic, sizeof(Magic))) {
    Err = "not a susd snapshot (bad magic)";
    return;
  }
  uint32_t Version = R.getU32();
  if (R.failed()) {
    Err = "not a susd snapshot (truncated header)";
    return;
  }
  if (Version != FormatVersion) {
    Err = "unsupported snapshot format version " + std::to_string(Version) +
          " (this build reads version " + std::to_string(FormatVersion) + ")";
    return;
  }
  uint32_t Count = R.getU32();
  if (!R.checkCount(Count, 20, "section")) {
    Err = R.failed() ? R.error() : "truncated section table";
    return;
  }
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Tag = R.getU32();
    uint64_t Len = R.getU64();
    uint64_t Sum = R.getU64();
    if (R.failed()) {
      Err = R.error();
      return;
    }
    if (!knownTag(Tag)) {
      Err = "unknown snapshot section tag " + std::to_string(Tag);
      return;
    }
    SectionTag T = static_cast<SectionTag>(Tag);
    for (const auto &[Seen, Payload] : Sections)
      if (Seen == T) {
        Err = "duplicate snapshot section tag " + std::to_string(Tag);
        return;
      }
    if (Len > R.remaining()) {
      Err = "snapshot section " + std::to_string(Tag) +
            " truncated (declares " + std::to_string(Len) + " bytes, " +
            std::to_string(R.remaining()) + " remain)";
      return;
    }
    std::string_view Payload = R.getBytes(static_cast<size_t>(Len));
    if (fnv1a64(Payload) != Sum) {
      Err = "snapshot section " + std::to_string(Tag) +
            " checksum mismatch (corrupt data)";
      return;
    }
    Sections.emplace_back(T, Payload);
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after the last snapshot section";
    Sections.clear();
  }
}

std::optional<std::string_view> SectionReader::section(SectionTag Tag) const {
  for (const auto &[T, Payload] : Sections)
    if (T == Tag)
      return Payload;
  return std::nullopt;
}
