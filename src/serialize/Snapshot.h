//===- serialize/Snapshot.h - Codecs for the snapshot sections --*- C++ -*-===//
///
/// \file
/// Encoders and decoders for the domain values the persistent cache
/// snapshot carries (DESIGN.md §13): interned strings, hash-consed
/// history expressions, contract summaries, compliance and validity
/// verdicts, DFAs and fused monitor automata.
///
/// Two design constraints shape everything here:
///
///  - *Identity is re-established, not transported.* Symbols and Expr
///    pointers are process-local (Expr::hash() is not stable across
///    processes), so the snapshot stores a local string table plus a
///    topologically ordered expression pool, and decoding re-interns
///    through the target StringInterner / HistContext factories. Two
///    structurally equal expressions therefore decode to the same
///    pointer — the property every cache key relies on.
///
///  - *Validate before constructing.* HistContext factories and the Dfa
///    builder assert their preconditions (guard polarities, state
///    ranges); a decoder fed corrupt bytes must fail cleanly instead.
///    Every kind byte, child reference, polarity and state id is
///    range-checked against the Reader *before* any factory call, so a
///    corrupt snapshot yields Reader::failed(), never UB.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SERIALIZE_SNAPSHOT_H
#define SUS_SERIALIZE_SNAPSHOT_H

#include "automata/Nfa.h"
#include "contract/Compliance.h"
#include "contract/Prescreen.h"
#include "hist/HistContext.h"
#include "monitor/Fused.h"
#include "serialize/Serialize.h"
#include "validity/StaticValidity.h"

#include <map>
#include <vector>

namespace sus {
namespace serialize {

/// Sentinel reference meaning "no symbol" / "no expression" (invalid
/// Symbol, null Expr*).
constexpr uint32_t NoId = 0xFFFFFFFFu;

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

/// Snapshot-local string table: registers the symbols the other sections
/// actually use (not the whole interner) and assigns dense ids in
/// registration order. Emit its section *after* everything that registers
/// into it.
class SymbolTable {
public:
  explicit SymbolTable(const StringInterner &Interner) : Interner(Interner) {}

  /// The snapshot-local id of \p S (registering on first use); NoId for
  /// the invalid symbol.
  uint32_t idOf(Symbol S);

  /// The Strings section payload: u32 count + that many strings.
  std::string payload() const;

private:
  const StringInterner &Interner;
  std::map<Symbol, uint32_t> Ids;
  std::vector<Symbol> Order;
};

/// Hash-consed expression pool encoder. Expressions are registered (with
/// all their transitive children) and assigned dense ids in topological
/// order — every child id is smaller than its parent's — so the decoder
/// can rebuild bottom-up through the HistContext factories in one pass.
class ExprEncoder {
public:
  explicit ExprEncoder(SymbolTable &Strings) : Strings(Strings) {}

  /// The pool id of \p E (registering the whole subtree on first use);
  /// NoId for null.
  uint32_t idOf(const hist::Expr *E);

  /// The Exprs section payload: u32 count + that many records.
  std::string payload() const;

private:
  void encodeInto(Writer &W, const hist::Expr *E) const;

  SymbolTable &Strings;
  std::map<const hist::Expr *, uint32_t> Ids;
  std::vector<const hist::Expr *> Order;
};

void encodeValue(Writer &W, SymbolTable &Strings, const Value &V);
void encodeCommAction(Writer &W, SymbolTable &Strings, hist::CommAction A);
void encodeEvent(Writer &W, SymbolTable &Strings, const hist::Event &Ev);
void encodePolicyRef(Writer &W, SymbolTable &Strings,
                     const hist::PolicyRef &Ref);
void encodeReadySet(Writer &W, SymbolTable &Strings,
                    const contract::ReadySet &S);
void encodeSummary(Writer &W, SymbolTable &Strings,
                   const contract::ContractSummary &Summary);
void encodeDfa(Writer &W, const automata::Dfa &D);
void encodeCompliance(Writer &W, SymbolTable &Strings, ExprEncoder &Exprs,
                      const contract::ComplianceResult &R);
void encodeValidity(Writer &W, SymbolTable &Strings,
                    const validity::StaticValidityResult &R);
void encodeFused(Writer &W, SymbolTable &Strings,
                 const monitor::FusedPolicyAutomaton &F);

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

/// Decodes the Strings section, re-interning every entry into the target
/// interner, then maps snapshot-local ids back to live Symbols.
class SymbolDecoder {
public:
  /// Decodes the whole section; on failure \p R carries the diagnostic.
  SymbolDecoder(Reader &R, StringInterner &Interner);

  /// The live symbol for snapshot-local id \p Id (NoId → invalid symbol);
  /// fails \p R on an out-of-range id.
  Symbol symbol(uint32_t Id, Reader &R) const;

  size_t size() const { return Symbols.size(); }

private:
  std::vector<Symbol> Symbols;
};

/// Decodes the Exprs section bottom-up through the HistContext factories.
class ExprDecoder {
public:
  /// Decodes the whole pool; on failure \p R carries the diagnostic.
  ExprDecoder(Reader &R, const SymbolDecoder &Strings,
              hist::HistContext &Ctx);

  /// The live expression for pool id \p Id (NoId → null); fails \p R on
  /// an out-of-range id.
  const hist::Expr *expr(uint32_t Id, Reader &R) const;

  size_t size() const { return Exprs.size(); }

private:
  const hist::Expr *decodeOne(Reader &R, const SymbolDecoder &Strings,
                              hist::HistContext &Ctx) const;

  std::vector<const hist::Expr *> Exprs;
};

Value decodeValue(Reader &R, const SymbolDecoder &Strings);
hist::CommAction decodeCommAction(Reader &R, const SymbolDecoder &Strings);
hist::Event decodeEvent(Reader &R, const SymbolDecoder &Strings);
hist::PolicyRef decodePolicyRef(Reader &R, const SymbolDecoder &Strings);
contract::ReadySet decodeReadySet(Reader &R, const SymbolDecoder &Strings);
contract::ContractSummary decodeSummary(Reader &R,
                                        const SymbolDecoder &Strings);
automata::Dfa decodeDfa(Reader &R);
contract::ComplianceResult decodeCompliance(Reader &R,
                                            const SymbolDecoder &Strings,
                                            const ExprDecoder &Exprs);
validity::StaticValidityResult decodeValidity(Reader &R,
                                              const SymbolDecoder &Strings);
/// Rebuilds the fused automaton including the derived EventIndex and the
/// recomputed fingerprint; validates totality and mask/acceptance
/// consistency.
monitor::FusedPolicyAutomaton decodeFused(Reader &R,
                                          const SymbolDecoder &Strings);

} // namespace serialize
} // namespace sus

#endif // SUS_SERIALIZE_SNAPSHOT_H
