//===- validity/CostAnalysis.cpp - Quantitative effects --------------------===//

#include "validity/CostAnalysis.h"

#include "hist/TransitionSystem.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace sus;
using namespace sus::hist;
using namespace sus::validity;

namespace {

/// Iterative Tarjan SCC over the LTS.
class SccFinder {
public:
  explicit SccFinder(const TransitionSystem &Ts) : Ts(Ts) {
    size_t N = Ts.numStates();
    Index.assign(N, -1);
    Low.assign(N, 0);
    OnStack.assign(N, false);
    Component.assign(N, -1);
    for (uint32_t S = 0; S < N; ++S)
      if (Index[S] < 0)
        run(S);
  }

  int component(uint32_t S) const { return Component[S]; }
  int numComponents() const { return NumComponents; }

private:
  void run(uint32_t Root) {
    struct Frame {
      uint32_t State;
      size_t EdgeIx;
    };
    std::vector<Frame> CallStack = {{Root, 0}};
    visit(Root);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      const auto &Edges = Ts.edges(F.State);
      if (F.EdgeIx < Edges.size()) {
        uint32_t T = Edges[F.EdgeIx++].Target;
        if (Index[T] < 0) {
          visit(T);
          CallStack.push_back({T, 0});
        } else if (OnStack[T]) {
          Low[F.State] = std::min(Low[F.State], Index[T]);
        }
        continue;
      }
      // Post-visit.
      if (Low[F.State] == Index[F.State]) {
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Component[W] = NumComponents;
          if (W == F.State)
            break;
        }
        ++NumComponents;
      }
      uint32_t Done = F.State;
      CallStack.pop_back();
      if (!CallStack.empty())
        Low[CallStack.back().State] =
            std::min(Low[CallStack.back().State], Low[Done]);
    }
  }

  void visit(uint32_t S) {
    Index[S] = Low[S] = NextIndex++;
    Stack.push_back(S);
    OnStack[S] = true;
  }

  const TransitionSystem &Ts;
  std::vector<int> Index, Low, Component;
  std::vector<bool> OnStack;
  std::vector<uint32_t> Stack;
  int NextIndex = 0;
  int NumComponents = 0;
};

} // namespace

CostResult sus::validity::maxEventCost(HistContext &Ctx, const Expr *E,
                                       const CostModel &Model) {
  TransitionSystem Ts(Ctx, E);
  CostResult Result;
  if (!Ts.isComplete()) {
    // Ill-formed input: be conservative.
    Result.Bounded = false;
    return Result;
  }

  auto EdgeCost = [&](const TransitionSystem::Edge &Edge) -> int64_t {
    return Edge.L.isEvent() ? Model.cost(Edge.L.asEvent()) : 0;
  };

  SccFinder Scc(Ts);

  // A positive-cost edge inside an SCC makes costs unbounded (the whole
  // LTS is reachable from the root by construction).
  for (uint32_t S = 0; S < Ts.numStates(); ++S)
    for (const TransitionSystem::Edge &Edge : Ts.edges(S))
      if (Scc.component(S) == Scc.component(Edge.Target) &&
          EdgeCost(Edge) > 0) {
        Result.Bounded = false;
        return Result;
      }

  // Longest path on the SCC condensation. Tarjan numbers components in
  // reverse topological order: component(u) < component(v) implies v
  // cannot reach u... process components in increasing order so
  // successors (smaller numbers) are finished first.
  int NumComponents = Scc.numComponents();
  std::vector<int64_t> Best(NumComponents, 0);
  // Collect per-state max-onward cost: iterate components in ascending
  // order (reverse topological = successors first).
  std::vector<std::vector<uint32_t>> Members(NumComponents);
  for (uint32_t S = 0; S < Ts.numStates(); ++S)
    Members[Scc.component(S)].push_back(S);

  std::vector<int64_t> StateBest(Ts.numStates(), 0);
  for (int C = 0; C < NumComponents; ++C) {
    // Within a zero-weight SCC every member can reach every other for
    // free, so they share the best onward value.
    int64_t ComponentBest = 0;
    for (uint32_t S : Members[C])
      for (const TransitionSystem::Edge &Edge : Ts.edges(S)) {
        int64_t Candidate = EdgeCost(Edge);
        if (Scc.component(Edge.Target) != C)
          Candidate += StateBest[Edge.Target];
        ComponentBest = std::max(ComponentBest, Candidate);
      }
    // One relaxation suffices for cross-component edges; for chains
    // inside the SCC (all zero-cost) sharing the max is exact.
    Best[C] = ComponentBest;
    for (uint32_t S : Members[C])
      StateBest[S] = ComponentBest;
  }

  Result.MaxCost = StateBest[Ts.rootIndex()];
  return Result;
}
