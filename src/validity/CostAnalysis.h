//===- validity/CostAnalysis.h - Quantitative effects -----------*- C++ -*-===//
///
/// \file
/// A first step toward the paper's §5 "major line of research …
/// quantitative information in the security policies, along the lines of
/// [14]": assign costs to access events and bound the worst-case
/// accumulated cost of every run of a behaviour. Costs accumulate along
/// LTS paths; a reachable cycle with positive cost makes the behaviour
/// cost-unbounded (detected via SCC condensation), otherwise the maximum
/// is a longest path over the DAG of components.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_VALIDITY_COSTANALYSIS_H
#define SUS_VALIDITY_COSTANALYSIS_H

#include "hist/HistContext.h"

#include <cstdint>
#include <map>

namespace sus {
namespace validity {

/// Maps event names to non-negative costs; unknown events cost
/// DefaultCost.
struct CostModel {
  std::map<Symbol, int64_t> EventCost;
  int64_t DefaultCost = 0;

  int64_t cost(const hist::Event &Ev) const {
    auto It = EventCost.find(Ev.Name);
    return It == EventCost.end() ? DefaultCost : It->second;
  }
};

/// The outcome of a worst-case cost analysis.
struct CostResult {
  bool Bounded = true;
  /// Greatest accumulated cost over all (partial) runs; meaningful only
  /// when Bounded.
  int64_t MaxCost = 0;
};

/// Worst-case accumulated event cost over every run of \p E.
CostResult maxEventCost(hist::HistContext &Ctx, const hist::Expr *E,
                        const CostModel &Model);

} // namespace validity
} // namespace sus

#endif // SUS_VALIDITY_COSTANALYSIS_H
