//===- validity/FrameRegularize.h - Framing regularization ------*- C++ -*-===//
///
/// \file
/// The §3.1 regularization from [Bartoletti–Degano–Ferrari]: validity of
/// history expressions is non-regular because framings nest, but re-opening
/// a policy that is already active is redundant ("it suffices recording the
/// opening of policies, and removing those already opened and their
/// corresponding closures"). Dropping redundant same-policy framings makes
/// the activation depth of each instantiated policy 0/1, so validity
/// becomes checkable by ordinary finite-state monitors.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_VALIDITY_FRAMEREGULARIZE_H
#define SUS_VALIDITY_FRAMEREGULARIZE_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

#include <set>

namespace sus {
namespace validity {

/// Rewrites \p E dropping every ϕ⟦·⟧ framing (and ⌊ϕ/⌋ϕ marker pair) whose
/// policy is already active in the enclosing context. The result generates
/// the same histories up to redundant framings — in particular validity is
/// preserved (tested against the dynamic checker).
const hist::Expr *regularizeFramings(hist::HistContext &Ctx,
                                     const hist::Expr *E);

/// The maximum same-policy framing nesting depth occurring syntactically
/// in \p E (1 = no redundant nesting). After regularization this is ≤ 1.
unsigned maxFramingNesting(const hist::Expr *E);

} // namespace validity
} // namespace sus

#endif // SUS_VALIDITY_FRAMEREGULARIZE_H
