//===- validity/StaticValidity.h - Plan validity model checker --*- C++ -*-===//
///
/// \file
/// The §3.1/§5 static security check: given a client, a plan π and the
/// repository R, explore every execution of the composed service (the
/// client with each request bound to its planned service, sessions nesting
/// as in the network semantics) while running all instantiated policy
/// monitors over the generated history. The plan is *security-valid* iff no
/// reachable step violates an active policy — then the run-time monitor can
/// be switched off.
///
/// Because expressions are guarded/tail-recursive and hash-consed, and
/// policy monitors are finite automata, the composed state space is finite:
/// this is the "standard model checking through specially-tailored finite
/// state automata" of the paper, with the [4] regularization keeping the
/// framing depth bounded.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_VALIDITY_STATICVALIDITY_H
#define SUS_VALIDITY_STATICVALIDITY_H

#include "hist/HistContext.h"
#include "plan/Plan.h"
#include "policy/UsageAutomaton.h"
#include "support/Diagnostics.h"
#include "support/ResourceGovernor.h"

#include <optional>
#include <string>
#include <vector>

namespace sus {
namespace validity {

/// Why a plan fails the static check.
enum class PlanFailureKind {
  None,
  PolicyViolation,    ///< Some execution violates an active policy.
  UnboundRequest,     ///< π does not cover a reachable request.
  UnknownService,     ///< π maps a request to a location not in R.
  UnknownPolicy,      ///< A policy reference cannot be instantiated.
  StateSpaceExceeded, ///< Exploration truncated (MaxStates).
  ResourceExhausted,  ///< A governor stopped the check (Inconclusive).
};

/// Outcome of checking one (client, plan) pair.
struct StaticValidityResult {
  bool Valid = false;
  PlanFailureKind Failure = PlanFailureKind::None;

  /// For PolicyViolation / UnknownPolicy: the policy involved.
  std::optional<hist::PolicyRef> Policy;
  /// For UnboundRequest / UnknownService: the request involved.
  std::optional<hist::RequestId> Request;

  /// A shortest labelled path from the initial configuration to the
  /// failure (rendered labels; τ steps shown as "tau").
  std::vector<std::string> Trace;

  /// Exploration size (for the B2/B3 benchmarks).
  size_t ExploredStates = 0;

  /// For Failure == ResourceExhausted: what ran out. Results carrying
  /// this are partial and must never be cached.
  std::optional<sus::ResourceExhausted> Exhausted;

  /// Informational: some non-terminated configuration has no successor.
  /// (Compliance violations of *external* choices show up here; internal
  /// choices need the §4 product check — the semantics is angelic.)
  bool HasStuckConfiguration = false;

  explicit operator bool() const { return Valid; }
};

/// Tuning knobs.
struct StaticValidityOptions {
  size_t MaxStates = 1 << 18;
  /// Apply regularizeFramings() to every expression first.
  bool Regularize = true;
  /// Optional resource governor: polled per explored configuration and
  /// charged ProductStates per interned configuration. Not owned.
  const ResourceGovernor *Governor = nullptr;
};

/// Checks that the client at \p ClientLoc, orchestrated by \p P over
/// \p Repo, can never violate a policy of \p Registry.
StaticValidityResult
checkPlanValidity(hist::HistContext &Ctx, const hist::Expr *Client,
                  plan::Loc ClientLoc, const plan::Plan &P,
                  const plan::Repository &Repo,
                  const policy::PolicyRegistry &Registry,
                  const StaticValidityOptions &Options = {});

} // namespace validity
} // namespace sus

#endif // SUS_VALIDITY_STATICVALIDITY_H
