//===- validity/StaticValidity.cpp - Plan validity model checker ---------===//

#include "validity/StaticValidity.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include "hist/Derive.h"
#include "support/Casting.h"
#include "support/HashUtil.h"
#include "validity/FrameRegularize.h"

#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::validity;

namespace {

//===----------------------------------------------------------------------===//
// Session trees: S ::= ℓ:H | [S, S]
//===----------------------------------------------------------------------===//

struct SessionNode {
  bool IsLeaf;
  // Leaf payload.
  plan::Loc Location;
  const Expr *Behavior = nullptr;
  // Pair payload. By construction Left is the session opener.
  const SessionNode *Left = nullptr;
  const SessionNode *Right = nullptr;
};

/// Hash-conses session trees so a tree is identified by its pointer.
class TreeFactory {
public:
  const SessionNode *leaf(plan::Loc L, const Expr *H) {
    std::vector<uint64_t> Key = {1, L.id(), reinterpret_cast<uint64_t>(H)};
    return intern(Key, SessionNode{true, L, H, nullptr, nullptr});
  }

  const SessionNode *pair(const SessionNode *A, const SessionNode *B) {
    std::vector<uint64_t> Key = {2, reinterpret_cast<uint64_t>(A),
                                 reinterpret_cast<uint64_t>(B)};
    return intern(Key, SessionNode{false, plan::Loc(), nullptr, A, B});
  }

private:
  const SessionNode *intern(const std::vector<uint64_t> &Key,
                            SessionNode Node) {
    auto It = Unique.find(Key);
    if (It != Unique.end())
      return It->second;
    Storage.push_back(Node);
    const SessionNode *P = &Storage.back();
    Unique.emplace(Key, P);
    return P;
  }

  struct VecHash {
    size_t operator()(const std::vector<uint64_t> &V) const noexcept {
      size_t Seed = V.size();
      for (uint64_t X : V)
        hashCombineValue(Seed, X);
      return Seed;
    }
  };

  std::deque<SessionNode> Storage;
  std::unordered_map<std::vector<uint64_t>, const SessionNode *, VecHash>
      Unique;
};

/// Φ(H): the sequence of ⌋ϕ markers along the sequential spine of H (the
/// auxiliary function of rule Close).
void collectPendingFrameCloses(const Expr *E, std::vector<PolicyRef> &Out) {
  if (const auto *S = dyn_cast<SeqExpr>(E)) {
    collectPendingFrameCloses(S->head(), Out);
    collectPendingFrameCloses(S->tail(), Out);
    return;
  }
  if (const auto *F = dyn_cast<FrameCloseExpr>(E))
    Out.push_back(F->policy());
}

//===----------------------------------------------------------------------===//
// Monitors
//===----------------------------------------------------------------------===//

/// One tracked policy instance: reachable automaton states + activation
/// count. Both are part of the explored state.
struct MonitorSlot {
  std::vector<policy::UStateId> States;
  unsigned Active = 0;

  bool operator==(const MonitorSlot &O) const {
    return Active == O.Active && States == O.States;
  }
};

struct ExplState {
  const SessionNode *Tree;
  std::vector<MonitorSlot> Monitors;
};

std::vector<uint64_t> encodeState(const ExplState &S) {
  std::vector<uint64_t> Key;
  Key.push_back(reinterpret_cast<uint64_t>(S.Tree));
  for (const MonitorSlot &M : S.Monitors) {
    Key.push_back(M.Active);
    Key.push_back(M.States.size());
    for (policy::UStateId Q : M.States)
      Key.push_back(Q);
  }
  return Key;
}

/// One atomic move of the composed service.
struct Move {
  const SessionNode *NewTree = nullptr;
  std::vector<Label> HistoryAppend; ///< Ev/Frm labels this move logs.
  std::string Desc;                 ///< Rendered label for traces.
  // Failure moves (plan gaps) abort exploration immediately.
  PlanFailureKind Gap = PlanFailureKind::None;
  RequestId GapRequest = 0;
};

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

class Checker {
public:
  Checker(HistContext &Ctx, const plan::Plan &P, const plan::Repository &Repo,
          const policy::PolicyRegistry &Registry,
          const StaticValidityOptions &Options)
      : Ctx(Ctx), P(P), Repo(Repo), Registry(Registry), Options(Options) {}

  StaticValidityResult run(const Expr *Client, plan::Loc ClientLoc);

private:
  /// Enumerates the moves of \p Node (rule Session lifts moves of inner
  /// sessions; Synch and Close apply at pairs).
  void movesOf(const SessionNode *Node, std::vector<Move> &Out);

  /// Collects every policy reference in the client and the planned
  /// services; returns false on an uninstantiable one.
  bool collectPolicies(const Expr *Client, StaticValidityResult &Result);

  void collectPolicyRefs(const Expr *E, std::vector<PolicyRef> &Out);

  int slotIndex(const PolicyRef &Ref) const;

  /// Applies the history labels of \p M to \p Monitors; returns the index
  /// of a violated policy slot or -1.
  int applyLabels(const Move &M, std::vector<MonitorSlot> &Monitors) const;

  const Expr *maybeRegularize(const Expr *E) {
    return Options.Regularize ? regularizeFramings(Ctx, E) : E;
  }

  HistContext &Ctx;
  const plan::Plan &P;
  const plan::Repository &Repo;
  const policy::PolicyRegistry &Registry;
  const StaticValidityOptions &Options;

  TreeFactory Trees;
  std::vector<PolicyRef> SlotRefs;
  std::vector<policy::PolicyInstance> SlotInstances;
};

void Checker::collectPolicyRefs(const Expr *E, std::vector<PolicyRef> &Out) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::Event:
    return;
  case ExprKind::Mu:
    collectPolicyRefs(cast<MuExpr>(E)->body(), Out);
    return;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    collectPolicyRefs(S->head(), Out);
    collectPolicyRefs(S->tail(), Out);
    return;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      collectPolicyRefs(B.Body, Out);
    return;
  case ExprKind::Request: {
    const auto *R = cast<RequestExpr>(E);
    Out.push_back(R->policy());
    collectPolicyRefs(R->body(), Out);
    return;
  }
  case ExprKind::Framing: {
    const auto *F = cast<FramingExpr>(E);
    Out.push_back(F->policy());
    collectPolicyRefs(F->body(), Out);
    return;
  }
  case ExprKind::CloseMark:
    Out.push_back(cast<CloseMarkExpr>(E)->policy());
    return;
  case ExprKind::FrameOpen:
    Out.push_back(cast<FrameOpenExpr>(E)->policy());
    return;
  case ExprKind::FrameClose:
    Out.push_back(cast<FrameCloseExpr>(E)->policy());
    return;
  }
}

bool Checker::collectPolicies(const Expr *Client,
                              StaticValidityResult &Result) {
  std::vector<PolicyRef> Refs;
  collectPolicyRefs(Client, Refs);
  for (const auto &[R, L] : P.bindings()) {
    (void)R;
    if (const Expr *Service = Repo.find(L))
      collectPolicyRefs(Service, Refs);
  }
  for (const PolicyRef &Ref : Refs) {
    if (Ref.isTrivial() || slotIndex(Ref) >= 0)
      continue;
    std::optional<policy::PolicyInstance> Inst =
        Registry.instantiate(Ref, Ctx.interner(), nullptr);
    if (!Inst) {
      Result.Valid = false;
      Result.Failure = PlanFailureKind::UnknownPolicy;
      Result.Policy = Ref;
      return false;
    }
    SlotRefs.push_back(Ref);
    SlotInstances.push_back(std::move(*Inst));
  }
  return true;
}

int Checker::slotIndex(const PolicyRef &Ref) const {
  for (size_t I = 0; I < SlotRefs.size(); ++I)
    if (SlotRefs[I] == Ref)
      return static_cast<int>(I);
  return -1;
}

void Checker::movesOf(const SessionNode *Node, std::vector<Move> &Out) {
  if (Node->IsLeaf) {
    for (const Transition &T : derive(Ctx, Node->Behavior)) {
      switch (T.L.kind()) {
      case LabelKind::Event:
      case LabelKind::FrameOpen:
      case LabelKind::FrameClose: {
        Move M;
        M.NewTree = Trees.leaf(Node->Location, T.Target);
        M.HistoryAppend.push_back(T.L);
        M.Desc = T.L.str(Ctx.interner());
        Out.push_back(std::move(M));
        break;
      }
      case LabelKind::Open: {
        // Rule Open: bind r through π, spawn the service alongside.
        RequestId R = T.L.request();
        std::optional<plan::Loc> L = P.lookup(R);
        if (!L) {
          Move M;
          M.Gap = PlanFailureKind::UnboundRequest;
          M.GapRequest = R;
          M.Desc = T.L.str(Ctx.interner());
          Out.push_back(std::move(M));
          break;
        }
        const Expr *Service = Repo.find(*L);
        if (!Service) {
          Move M;
          M.Gap = PlanFailureKind::UnknownService;
          M.GapRequest = R;
          M.Desc = T.L.str(Ctx.interner());
          Out.push_back(std::move(M));
          break;
        }
        Move M;
        M.NewTree =
            Trees.pair(Trees.leaf(Node->Location, T.Target),
                       Trees.leaf(*L, maybeRegularize(Service)));
        if (!T.L.policy().isTrivial())
          M.HistoryAppend.push_back(Label::frameOpen(T.L.policy()));
        M.Desc = T.L.str(Ctx.interner());
        Out.push_back(std::move(M));
        break;
      }
      case LabelKind::Close:
        // A close with no enclosing session: impossible for expressions
        // built from requests (close marks appear only after an Open).
        break;
      case LabelKind::Input:
      case LabelKind::Output:
        // Communication needs a session partner; handled at the pair.
        break;
      case LabelKind::Tau:
        break;
      }
    }
    return;
  }

  // Rule Session: either side evolves on its own.
  std::vector<Move> LeftMoves, RightMoves;
  movesOf(Node->Left, LeftMoves);
  movesOf(Node->Right, RightMoves);
  for (Move &M : LeftMoves) {
    if (M.Gap == PlanFailureKind::None)
      M.NewTree = Trees.pair(M.NewTree, Node->Right);
    Out.push_back(std::move(M));
  }
  for (Move &M : RightMoves) {
    if (M.Gap == PlanFailureKind::None)
      M.NewTree = Trees.pair(Node->Left, M.NewTree);
    Out.push_back(std::move(M));
  }

  // Rules Synch and Close need both sides to be leaves (a partner engaged
  // in a nested session first has to finish it).
  const SessionNode *A = Node->Left;
  const SessionNode *B = Node->Right;

  auto TrySynchAndClose = [&](const SessionNode *X, const SessionNode *Y) {
    if (!X->IsLeaf)
      return;
    for (const Transition &TX : derive(Ctx, X->Behavior)) {
      // Rule Close: the opener ends the session; the partner (which must
      // be a plain leaf) is terminated and its pending frame closes are
      // flushed into the history.
      if (TX.L.isClose() && Y->IsLeaf) {
        Move M;
        M.NewTree = Trees.leaf(X->Location, TX.Target);
        std::vector<PolicyRef> Pending;
        collectPendingFrameCloses(Y->Behavior, Pending);
        for (const PolicyRef &Ref : Pending)
          if (!Ref.isTrivial())
            M.HistoryAppend.push_back(Label::frameClose(Ref));
        if (!TX.L.policy().isTrivial())
          M.HistoryAppend.push_back(Label::frameClose(TX.L.policy()));
        M.Desc = TX.L.str(Ctx.interner());
        Out.push_back(std::move(M));
        continue;
      }
      // Rule Synch: complementary actions meet.
      if (!TX.L.isComm() || !Y->IsLeaf)
        continue;
      CommAction AX = TX.L.asComm();
      for (const Transition &TY : derive(Ctx, Y->Behavior)) {
        if (!TY.L.isComm() || TY.L.asComm() != AX.complement())
          continue;
        // Emit the synchronization once, from the sender's side.
        if (!AX.isOutput())
          continue;
        Move M;
        const SessionNode *NX = Trees.leaf(X->Location, TX.Target);
        const SessionNode *NY = Trees.leaf(Y->Location, TY.Target);
        M.NewTree = (X == Node->Left) ? Trees.pair(NX, NY)
                                      : Trees.pair(NY, NX);
        M.Desc = "tau(" + AX.str(Ctx.interner()) + ")";
        Out.push_back(std::move(M));
      }
    }
  };
  TrySynchAndClose(A, B);
  TrySynchAndClose(B, A);
}

int Checker::applyLabels(const Move &M,
                         std::vector<MonitorSlot> &Monitors) const {
  for (const Label &L : M.HistoryAppend) {
    switch (L.kind()) {
    case LabelKind::Event: {
      // All monitors consume every event (history dependence).
      for (size_t I = 0; I < Monitors.size(); ++I) {
        MonitorSlot &Slot = Monitors[I];
        std::vector<policy::UStateId> Next;
        for (policy::UStateId Q : Slot.States)
          for (policy::UStateId T : SlotInstances[I].step(Q, L.asEvent()))
            Next.push_back(T);
        std::sort(Next.begin(), Next.end());
        Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
        Slot.States = std::move(Next);
      }
      for (size_t I = 0; I < Monitors.size(); ++I) {
        if (Monitors[I].Active == 0)
          continue;
        for (policy::UStateId Q : Monitors[I].States)
          if (SlotInstances[I].shape().isOffending(Q))
            return static_cast<int>(I);
      }
      break;
    }
    case LabelKind::FrameOpen: {
      int I = slotIndex(L.policy());
      assert(I >= 0 && "policies were collected up front");
      ++Monitors[I].Active;
      // History dependence: the past must already respect the policy.
      for (policy::UStateId Q : Monitors[I].States)
        if (SlotInstances[I].shape().isOffending(Q))
          return I;
      break;
    }
    case LabelKind::FrameClose: {
      int I = slotIndex(L.policy());
      assert(I >= 0 && "policies were collected up front");
      if (Monitors[I].Active > 0)
        --Monitors[I].Active;
      break;
    }
    default:
      assert(false && "history labels are events and framings");
    }
  }
  return -1;
}

StaticValidityResult Checker::run(const Expr *Client, plan::Loc ClientLoc) {
  StaticValidityResult Result;
  if (!collectPolicies(Client, Result))
    return Result;

  struct VecHash {
    size_t operator()(const std::vector<uint64_t> &V) const noexcept {
      size_t Seed = V.size();
      for (uint64_t X : V)
        hashCombineValue(Seed, X);
      return Seed;
    }
  };

  std::vector<ExplState> States;
  std::vector<std::optional<std::pair<uint32_t, std::string>>> Pred;
  std::unordered_map<std::vector<uint64_t>, uint32_t, VecHash> Index;
  std::deque<uint32_t> Work;

  std::optional<sus::ResourceExhausted> Trip;
  auto Intern = [&](ExplState S,
                    std::optional<std::pair<uint32_t, std::string>> From)
      -> std::optional<uint32_t> {
    std::vector<uint64_t> Key = encodeState(S);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    if (States.size() >= Options.MaxStates)
      return std::nullopt;
    if (Options.Governor) {
      if (std::optional<sus::ResourceExhausted> E = Options.Governor->charge(
              ResourceKind::ProductStates, States.size() + 1)) {
        Trip = E;
        return std::nullopt;
      }
    }
    uint32_t I = static_cast<uint32_t>(States.size());
    States.push_back(std::move(S));
    Pred.push_back(std::move(From));
    Index.emplace(std::move(Key), I);
    Work.push_back(I);
    return I;
  };

  auto TraceTo = [&](uint32_t I, const std::string &Last) {
    std::vector<std::string> Trace;
    Trace.push_back(Last);
    for (uint32_t S = I; Pred[S]; S = Pred[S]->first)
      Trace.push_back(Pred[S]->second);
    std::reverse(Trace.begin(), Trace.end());
    return Trace;
  };

  ExplState Init;
  Init.Tree = Trees.leaf(ClientLoc, maybeRegularize(Client));
  Init.Monitors.resize(SlotInstances.size());
  for (size_t I = 0; I < SlotInstances.size(); ++I)
    Init.Monitors[I].States = {SlotInstances[I].shape().start()};
  Intern(std::move(Init), std::nullopt);

  bool Exceeded = false;
  while (!Work.empty()) {
    if (Options.Governor && !Trip) {
      if (std::optional<sus::ResourceExhausted> E = Options.Governor->poll())
        Trip = E;
    }
    if (Trip)
      break;
    uint32_t I = Work.front();
    Work.pop_front();
    // Note: States may reallocate inside the loop; copy what we need.
    const SessionNode *Tree = States[I].Tree;

    std::vector<Move> Moves;
    movesOf(Tree, Moves);

    bool Terminated = Tree->IsLeaf && Tree->Behavior->isEmpty();
    if (Moves.empty() && !Terminated)
      Result.HasStuckConfiguration = true;

    for (const Move &M : Moves) {
      if (M.Gap != PlanFailureKind::None) {
        Result.Valid = false;
        Result.Failure = M.Gap;
        Result.Request = M.GapRequest;
        Result.Trace = TraceTo(I, M.Desc);
        Result.ExploredStates = States.size();
        return Result;
      }
      ExplState Next;
      Next.Tree = M.NewTree;
      Next.Monitors = States[I].Monitors;
      int Violated = applyLabels(M, Next.Monitors);
      if (Violated >= 0) {
        Result.Valid = false;
        Result.Failure = PlanFailureKind::PolicyViolation;
        Result.Policy = SlotRefs[Violated];
        Result.Trace = TraceTo(I, M.Desc);
        Result.ExploredStates = States.size();
        return Result;
      }
      if (!Intern(std::move(Next), std::make_pair(I, M.Desc)))
        Exceeded = true;
    }
  }

  Result.ExploredStates = States.size();
  if (Trip) {
    Result.Valid = false;
    Result.Failure = PlanFailureKind::ResourceExhausted;
    Result.Exhausted = Trip;
    return Result;
  }
  if (Exceeded) {
    Result.Valid = false;
    Result.Failure = PlanFailureKind::StateSpaceExceeded;
    return Result;
  }
  Result.Valid = true;
  Result.Failure = PlanFailureKind::None;
  return Result;
}

} // namespace

StaticValidityResult sus::validity::checkPlanValidity(
    HistContext &Ctx, const Expr *Client, plan::Loc ClientLoc,
    const plan::Plan &P, const plan::Repository &Repo,
    const policy::PolicyRegistry &Registry,
    const StaticValidityOptions &Options) {
  trace::Span Span("validity.static", "pipeline");
  Checker C(Ctx, P, Repo, Registry, Options);
  StaticValidityResult Result = C.run(Client, ClientLoc);
  if (Result.Failure == PlanFailureKind::ResourceExhausted)
    Span.tag("governor", Result.Exhausted->deadlineLike()
                             ? "deadline_exceeded"
                             : "budget_exceeded");
  else
    Span.tag("verdict", Result.Valid ? "valid" : "invalid");
  static metrics::Counter &Checks = metrics::counter("validity.checks");
  Checks.add();
  return Result;
}
