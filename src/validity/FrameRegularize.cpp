//===- validity/FrameRegularize.cpp - Framing regularization --------------===//

#include "validity/FrameRegularize.h"

#include "support/Casting.h"

#include <algorithm>
#include <map>

using namespace sus;
using namespace sus::hist;
using namespace sus::validity;

namespace {

/// Active-policy context ordered set for use as part of a memo key.
using ActiveSet = std::set<PolicyRef>;

class Regularizer {
public:
  explicit Regularizer(HistContext &Ctx) : Ctx(Ctx) {}

  const Expr *visit(const Expr *E, const ActiveSet &Active) {
    auto Key = std::make_pair(E, Active);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    const Expr *Result = compute(E, Active);
    Memo.emplace(std::move(Key), Result);
    return Result;
  }

private:
  const Expr *compute(const Expr *E, const ActiveSet &Active) {
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Var:
    case ExprKind::Event:
    case ExprKind::CloseMark:
      return E;

    case ExprKind::FrameOpen: {
      // A bare ⌊ϕ marker re-opening an active policy is redundant; we keep
      // it (markers appear only in derivatives, not in source expressions).
      return E;
    }
    case ExprKind::FrameClose:
      return E;

    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      return Ctx.mu(M->var(), visit(M->body(), Active));
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return Ctx.seq(visit(S->head(), Active), visit(S->tail(), Active));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      std::vector<ChoiceBranch> Branches;
      Branches.reserve(C->numBranches());
      for (const ChoiceBranch &B : C->branches())
        Branches.push_back({B.Guard, visit(B.Body, Active)});
      return E->kind() == ExprKind::ExtChoice
                 ? Ctx.extChoice(std::move(Branches))
                 : Ctx.intChoice(std::move(Branches));
    }
    case ExprKind::Request: {
      const auto *R = cast<RequestExpr>(E);
      // The request's policy frames the whole session.
      if (!R->policy().isTrivial() && Active.count(R->policy())) {
        // Redundant session policy: keep the session but the framing it
        // induces is subsumed; we still need the open/close structure, so
        // requests are left intact (their policy is enforced by the outer
        // frame anyway).
        return Ctx.request(R->request(), R->policy(),
                           visit(R->body(), Active));
      }
      ActiveSet Inner = Active;
      if (!R->policy().isTrivial())
        Inner.insert(R->policy());
      return Ctx.request(R->request(), R->policy(), visit(R->body(), Inner));
    }
    case ExprKind::Framing: {
      const auto *F = cast<FramingExpr>(E);
      if (Active.count(F->policy()))
        return visit(F->body(), Active); // Redundant: drop the frame.
      ActiveSet Inner = Active;
      Inner.insert(F->policy());
      return Ctx.framing(F->policy(), visit(F->body(), Inner));
    }
    }
    return E;
  }

  HistContext &Ctx;
  std::map<std::pair<const Expr *, ActiveSet>, const Expr *> Memo;
};

unsigned nesting(const Expr *E, std::map<PolicyRef, unsigned> &Depth,
                 unsigned &Max) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::Event:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return 0;
  case ExprKind::Mu:
    nesting(cast<MuExpr>(E)->body(), Depth, Max);
    return 0;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    nesting(S->head(), Depth, Max);
    nesting(S->tail(), Depth, Max);
    return 0;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      nesting(B.Body, Depth, Max);
    return 0;
  case ExprKind::Request:
    nesting(cast<RequestExpr>(E)->body(), Depth, Max);
    return 0;
  case ExprKind::Framing: {
    const auto *F = cast<FramingExpr>(E);
    unsigned &D = Depth[F->policy()];
    ++D;
    Max = std::max(Max, D);
    nesting(F->body(), Depth, Max);
    --D;
    return 0;
  }
  }
  return 0;
}

} // namespace

const Expr *sus::validity::regularizeFramings(HistContext &Ctx,
                                              const Expr *E) {
  Regularizer R(Ctx);
  return R.visit(E, {});
}

unsigned sus::validity::maxFramingNesting(const Expr *E) {
  std::map<PolicyRef, unsigned> Depth;
  unsigned Max = 0;
  nesting(E, Depth, Max);
  return Max;
}
