//===- examples/quickstart.cpp - a 5-minute tour of the library ----------===//
///
/// \file
/// Builds a tiny client/service pair, checks compliance (§4), attaches a
/// security policy (Fig. 1 style), statically validates a plan (§3.1/§5),
/// and finally runs the network with the monitor switched off.
///
//===----------------------------------------------------------------------===//

#include "contract/Compliance.h"
#include "core/Verifier.h"
#include "hist/Printer.h"
#include "net/Interpreter.h"
#include "policy/Prelude.h"

#include <iostream>

using namespace sus;
using namespace sus::hist;

int main() {
  HistContext Ctx;

  // --- 1. Behaviours -----------------------------------------------------
  // A storage service: log the access, then either acknowledge or refuse.
  const Expr *Storage = Ctx.receive(
      "Put", Ctx.seq(Ctx.event("write", 1),
                     Ctx.intChoice({
                         {CommAction::output(Ctx.symbol("Ack")), Ctx.empty()},
                         {CommAction::output(Ctx.symbol("Nak")), Ctx.empty()},
                     })));

  // A client: open a session governed by a policy, send Put, await both
  // possible answers, close.
  PolicyRef NoWriteAfterRead;
  NoWriteAfterRead.Name = Ctx.symbol("noWaR");
  const Expr *Client = Ctx.seq(
      Ctx.event("read", 1),
      Ctx.request(1, NoWriteAfterRead,
                  Ctx.send("Put", Ctx.extChoice({
                                      {CommAction::input(Ctx.symbol("Ack")),
                                       Ctx.empty()},
                                      {CommAction::input(Ctx.symbol("Nak")),
                                       Ctx.empty()},
                                  }))));

  std::cout << "client:  " << print(Ctx, Client) << "\n";
  std::cout << "service: " << print(Ctx, Storage) << "\n\n";

  // --- 2. Compliance (§4) -------------------------------------------------
  auto Sites = plan::extractRequests(Client);
  auto Compliance =
      contract::checkServiceCompliance(Ctx, Sites[0].body(), Storage);
  std::cout << "compliance: " << (Compliance.Compliant ? "yes" : "no")
            << " (" << Compliance.ExploredStates << " product states)\n";

  // --- 3. Security (§3.1) -------------------------------------------------
  policy::PolicyRegistry Registry;
  Registry.add(policy::makeNeverAfterPolicy(Ctx.interner(), "noWaR",
                                            "read", "write"));

  plan::Repository Repo;
  plan::Loc LStore = Ctx.symbol("store");
  Repo.add(LStore, Storage);

  plan::Plan Pi;
  Pi.bind(1, LStore);

  auto Security = validity::checkPlanValidity(Ctx, Client, Ctx.symbol("c"),
                                              Pi, Repo, Registry);
  std::cout << "security:   " << (Security.Valid ? "valid" : "VIOLATION");
  if (!Security.Valid && Security.Policy)
    std::cout << " of " << Security.Policy->str(Ctx.interner());
  std::cout << "\n";

  // The client read before the session, and the service writes inside the
  // policy's scope: history dependence makes this plan invalid. Fix the
  // client by dropping the initial read.
  const Expr *FixedClient = Ctx.request(
      1, NoWriteAfterRead,
      Ctx.send("Put", Ctx.extChoice({
                          {CommAction::input(Ctx.symbol("Ack")), Ctx.empty()},
                          {CommAction::input(Ctx.symbol("Nak")), Ctx.empty()},
                      })));
  auto Fixed = validity::checkPlanValidity(Ctx, FixedClient,
                                           Ctx.symbol("c"), Pi, Repo,
                                           Registry);
  std::cout << "fixed:      " << (Fixed.Valid ? "valid" : "violation")
            << "\n\n";

  // --- 4. The §5 procedure end to end ------------------------------------
  core::Verifier Verifier(Ctx, Repo, Registry);
  auto Report = Verifier.verifyClient(FixedClient, Ctx.symbol("c"));
  core::printReport(Report, Ctx, std::cout);

  // --- 5. Run monitor-free (§5: "switch off any run-time monitor") -------
  auto Valid = Report.validPlans();
  if (!Valid.empty()) {
    net::InterpreterOptions Opts;
    Opts.MonitorEnabled = false;
    net::Interpreter I(Ctx, Repo, Registry,
                       {{Ctx.symbol("c"), FixedClient, Valid[0]}}, Opts);
    net::RunStats Stats = I.run(/*Seed=*/42);
    std::cout << "\nrun: " << Stats.StepsTaken << " steps, "
              << (Stats.AllCompleted ? "completed" : "stuck")
              << ", violations: " << Stats.Violations << "\n";
    std::cout << "history: " << I.history(0).str(Ctx.interner()) << "\n";
  }
  return 0;
}
