//===- examples/cloud_storage.cpp - replicated storage scenario -----------===//
///
/// \file
/// A second end-to-end scenario in the style of the paper's intro: a
/// client stores a blob through a gateway service that replicates the
/// write onto one of several replicas (a nested session). Replicas differ:
///
///   r1  writes and answers Ok/Fail                      (good)
///   r2  wipes the volume before writing                 (policy violation)
///   r3  may answer Busy, which the gateway cannot take  (not compliant)
///
/// The client imposes "never write after wipe" on its session. The §5
/// procedure finds exactly the plans routing through r1.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "hist/Printer.h"
#include "net/Interpreter.h"
#include "policy/Prelude.h"

#include <iostream>

using namespace sus;
using namespace sus::hist;

int main() {
  HistContext Ctx;

  PolicyRef NoWaW;
  NoWaW.Name = Ctx.symbol("noWriteAfterWipe");

  // Gateway: take the order, replicate into a nested session, report.
  const Expr *ReplicaAnswer = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("Ok")), Ctx.empty()},
      {CommAction::input(Ctx.symbol("Fail")), Ctx.empty()},
  });
  const Expr *Gateway = Ctx.receive(
      "Store",
      Ctx.seq(Ctx.request(20, PolicyRef(),
                          Ctx.send("Put", ReplicaAnswer)),
              Ctx.intChoice({
                  {CommAction::output(Ctx.symbol("Done")), Ctx.empty()},
                  {CommAction::output(Ctx.symbol("Err")), Ctx.empty()},
              })));

  auto MakeReplica = [&](bool Wipes, bool Busy) {
    std::vector<ChoiceBranch> Answers = {
        {CommAction::output(Ctx.symbol("Ok")), Ctx.empty()},
        {CommAction::output(Ctx.symbol("Fail")), Ctx.empty()},
    };
    if (Busy)
      Answers.push_back(
          {CommAction::output(Ctx.symbol("Busy")), Ctx.empty()});
    const Expr *Work = Ctx.seq(Ctx.event("write", 1),
                               Ctx.intChoice(std::move(Answers)));
    if (Wipes)
      Work = Ctx.seq(Ctx.event("wipe"), Work);
    return Ctx.receive("Put", Work);
  };

  const Expr *R1 = MakeReplica(/*Wipes=*/false, /*Busy=*/false);
  const Expr *R2 = MakeReplica(/*Wipes=*/true, /*Busy=*/false);
  const Expr *R3 = MakeReplica(/*Wipes=*/false, /*Busy=*/true);

  // Client: store under the policy, then await the verdict.
  const Expr *Client = Ctx.request(
      10, NoWaW,
      Ctx.send("Store", Ctx.extChoice({
                            {CommAction::input(Ctx.symbol("Done")),
                             Ctx.empty()},
                            {CommAction::input(Ctx.symbol("Err")),
                             Ctx.empty()},
                        })));

  std::cout << "client:  " << print(Ctx, Client) << "\n";
  std::cout << "gateway: " << print(Ctx, Gateway) << "\n";
  std::cout << "r1: " << print(Ctx, R1) << "\n";
  std::cout << "r2: " << print(Ctx, R2) << "\n";
  std::cout << "r3: " << print(Ctx, R3) << "\n\n";

  plan::Repository Repo;
  Repo.add(Ctx.symbol("gw"), Gateway);
  Repo.add(Ctx.symbol("r1"), R1);
  Repo.add(Ctx.symbol("r2"), R2);
  Repo.add(Ctx.symbol("r3"), R3);

  policy::PolicyRegistry Registry;
  Registry.add(policy::makeNeverAfterPolicy(
      Ctx.interner(), "noWriteAfterWipe", "wipe", "write"));

  core::Verifier V(Ctx, Repo, Registry);
  auto Report = V.verifyClient(Client, Ctx.symbol("client"));
  core::printReport(Report, Ctx, std::cout);

  // Show why r2 fails: the violating trace.
  plan::Plan BadPi;
  BadPi.bind(10, Ctx.symbol("gw"));
  BadPi.bind(20, Ctx.symbol("r2"));
  auto Bad = validity::checkPlanValidity(Ctx, Client, Ctx.symbol("client"),
                                         BadPi, Repo, Registry);
  std::cout << "\nplan {10 -> gw, 20 -> r2}: "
            << (Bad.Valid ? "valid?!" : "policy violation, trace:") << "\n";
  for (const std::string &L : Bad.Trace)
    std::cout << "  --> " << L << "\n";

  // Execute the valid plan without the monitor.
  auto Valid = Report.validPlans();
  if (!Valid.empty()) {
    net::InterpreterOptions Opts;
    Opts.MonitorEnabled = false;
    net::Interpreter I(Ctx, Repo, Registry,
                       {{Ctx.symbol("client"), Client, Valid[0]}}, Opts);
    net::RunStats Stats = I.run(/*Seed=*/7);
    std::cout << "\nrun of " << Valid[0].str(Ctx.interner()) << ": "
              << Stats.StepsTaken << " steps, violations "
              << Stats.Violations << ", history "
              << I.history(0).str(Ctx.interner()) << "\n";
  }
  return 0;
}
