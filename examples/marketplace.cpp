//===- examples/marketplace.cpp - λ-calculus negotiation scenario ---------===//
///
/// \file
/// A negotiation marketplace written in the λ service calculus (§3): the
/// buyer and the sellers are *programs*; the type-and-effect system
/// extracts their history expressions, and the §5 procedure verifies the
/// orchestration. Demonstrates recursion (an unbounded counter-offer
/// loop), a parametric price-floor policy built through the public
/// UsageAutomaton API, and the full λ → effects → plans → execution
/// pipeline.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "hist/Printer.h"
#include "lambda/TypeEffect.h"
#include "net/Interpreter.h"

#include <iostream>

using namespace sus;
using namespace sus::hist;

namespace {

/// floor(min): offering a price below `min` violates the policy.
policy::UsageAutomaton makeFloorPolicy(StringInterner &In) {
  policy::UsageAutomaton A(In.intern("floor"),
                           {{In.intern("min"), /*IsSet=*/false}});
  policy::UStateId Ok = A.addState("ok");
  policy::UStateId Bad = A.addState("lowball", /*Offending=*/true);
  A.setStart(Ok);
  A.addEdge(Ok, In.intern("offer"),
            policy::Guard::cmpParam(policy::CmpOp::LT, 0), Bad);
  A.addWildcardEdge(Bad, Bad);
  return A;
}

/// A seller program: greet every bid with an offer event, then accept,
/// counter (looping) or reject.
const lambda::Term *makeSeller(lambda::LambdaContext &L, int64_t Price,
                               bool Rude) {
  std::vector<lambda::CommArm> Arms = {
      L.arm("Accept", L.recv("Pay")),
      L.arm("Counter", L.jump("k")),
      L.arm("Reject", L.unit()),
  };
  if (Rude)
    Arms.push_back(L.arm("Ignore", L.unit()));
  return L.rec("k", L.seq(L.recv("Bid"),
                          L.seq(L.event("offer", Price),
                                L.select(std::move(Arms)))));
}

} // namespace

int main() {
  HistContext Ctx;
  lambda::LambdaContext L(Ctx);
  DiagnosticEngine Diags;
  lambda::EffectSystem Effects(L, Diags);

  // --- The buyer, as a program -------------------------------------------
  PolicyRef Floor;
  Floor.Name = Ctx.symbol("floor");
  Floor.Args.push_back({Value::integer(50)});

  const lambda::Term *Buyer = L.request(
      1, Floor,
      L.rec("h", L.seq(L.send("Bid"),
                       L.branch({
                           L.arm("Accept", L.send("Pay")),
                           L.arm("Counter", L.jump("h")),
                           L.arm("Reject", L.unit()),
                       }))));

  auto BuyerEffect = Effects.inferServiceEffect(Buyer);
  if (!BuyerEffect) {
    Diags.print(std::cerr);
    return 1;
  }
  std::cout << "buyer effect:  " << print(Ctx, *BuyerEffect) << "\n";

  // --- Three sellers, as programs ----------------------------------------
  auto SellerEffect = [&](int64_t Price, bool Rude) {
    auto E = Effects.inferServiceEffect(makeSeller(L, Price, Rude));
    if (!E) {
      Diags.print(std::cerr);
      std::exit(1);
    }
    return *E;
  };
  const Expr *Fair = SellerEffect(60, /*Rude=*/false);
  const Expr *Lowball = SellerEffect(30, /*Rude=*/false);
  const Expr *Rude = SellerEffect(60, /*Rude=*/true);
  std::cout << "fair seller:   " << print(Ctx, Fair) << "\n\n";

  plan::Repository Repo;
  Repo.add(Ctx.symbol("fair"), Fair);
  Repo.add(Ctx.symbol("lowball"), Lowball);
  Repo.add(Ctx.symbol("rude"), Rude);

  policy::PolicyRegistry Registry;
  Registry.add(makeFloorPolicy(Ctx.interner()));

  // --- Verify -------------------------------------------------------------
  core::Verifier V(Ctx, Repo, Registry);
  auto Report = V.verifyClient(*BuyerEffect, Ctx.symbol("buyer"));
  core::printReport(Report, Ctx, std::cout);

  // --- Execute the negotiation against the fair seller -------------------
  auto Valid = Report.validPlans();
  if (!Valid.empty()) {
    net::Interpreter I(Ctx, Repo, Registry,
                       {{Ctx.symbol("buyer"), *BuyerEffect, Valid[0]}},
                       net::InterpreterOptions{});
    // Cap the run: the negotiation may loop on Counter for a while.
    net::RunStats Stats = I.run(/*Seed=*/5, /*MaxSteps=*/200);
    std::cout << "\nnegotiation: " << Stats.StepsTaken << " steps, "
              << (Stats.AllCompleted ? "deal closed or rejected"
                                     : "still haggling at the step cap")
              << "\nhistory: " << I.history(0).str(Ctx.interner()) << "\n";
  }
  return 0;
}
