//===- examples/hotel_booking.cpp - the paper's §2 example, end to end ----===//
///
/// \file
/// Reproduces the motivating example of the paper:
///  - Fig. 1: the usage automaton ϕ(bl,p,t) (printed, plus Graphviz with
///    --dot);
///  - Fig. 2: clients C1/C2, broker Br, hotels S1–S4 (printed);
///  - §2 claims: who is compliant with whom, which plans are valid;
///  - Fig. 3: the computation fragment under π1 (printed with --trace).
///
//===----------------------------------------------------------------------===//

#include "core/HotelExample.h"
#include "core/Verifier.h"
#include "hist/Printer.h"
#include "net/Interpreter.h"
#include "plan/RequestExtract.h"

#include <cstring>
#include <iostream>

using namespace sus;
using namespace sus::hist;
using core::HotelExample;

namespace {

void printFigure2(HistContext &Ctx, const HotelExample &Ex) {
  std::cout << "== Fig. 2: the services ==\n";
  std::cout << "C1 = " << print(Ctx, Ex.C1) << "\n";
  std::cout << "C2 = " << print(Ctx, Ex.C2) << "\n";
  std::cout << "Br = " << print(Ctx, Ex.Br) << "\n";
  std::cout << "S1 = " << print(Ctx, Ex.S1) << "\n";
  std::cout << "S2 = " << print(Ctx, Ex.S2) << "\n";
  std::cout << "S3 = " << print(Ctx, Ex.S3) << "\n";
  std::cout << "S4 = " << print(Ctx, Ex.S4) << "\n\n";
}

void printComplianceClaims(HistContext &Ctx, const HotelExample &Ex) {
  std::cout << "== §2 compliance claims ==\n";
  const Expr *BrokerBody = plan::extractRequests(Ex.Br)[0].body();
  struct Row {
    const char *Name;
    const Expr *Service;
  };
  for (const Row &R : {Row{"S1", Ex.S1}, Row{"S2", Ex.S2}, Row{"S3", Ex.S3},
                       Row{"S4", Ex.S4}}) {
    auto Result = contract::checkServiceCompliance(Ctx, BrokerBody,
                                                   R.Service);
    std::cout << "Br |- " << R.Name << " : "
              << (Result.Compliant ? "compliant" : "NOT compliant");
    if (Result.Witness)
      std::cout << "  [" << Result.Witness->str(Ctx) << "]";
    std::cout << "\n";
  }
  std::cout << "\n";
}

void verifyClients(HistContext &Ctx, const HotelExample &Ex) {
  std::cout << "== §5 verification ==\n";
  core::Verifier V(Ctx, Ex.Repo, Ex.Registry);
  for (auto [Name, Client, Loc] :
       {std::tuple{"C1", Ex.C1, Ex.LC1}, std::tuple{"C2", Ex.C2, Ex.LC2}}) {
    std::cout << "client " << Name << ":\n";
    auto Report = V.verifyClient(Client, Loc);
    core::printReport(Report, Ctx, std::cout);
  }
  std::cout << "\n";
}

void runFigure3(HistContext &Ctx, const HotelExample &Ex, bool Trace) {
  std::cout << "== Fig. 3: a computation under pi1 (and C2 under its valid "
               "plan) ==\n";
  net::Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                     {{Ex.LC1, Ex.C1, Ex.pi1()},
                      {Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                     net::InterpreterOptions{});
  std::cout << "initial: " << I.configStr() << "\n";
  net::RunStats Stats = I.run(/*Seed=*/2013);
  if (Trace)
    for (const std::string &Line : I.trace())
      std::cout << "  --> " << Line << "\n";
  std::cout << "final:   " << I.configStr() << "\n";
  std::cout << "steps: " << Stats.StepsTaken
            << ", completed: " << (Stats.AllCompleted ? "yes" : "no")
            << ", monitor interventions: " << Stats.BlockedAttempts
            << "\n\n";
}

void demoDelDeadlock(HistContext &Ctx, const HotelExample &Ex) {
  std::cout << "== why pi2 is invalid: the Del message ==\n";
  net::InterpreterOptions Opts;
  Opts.CommittedInternalChoice = true;
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    net::Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                       {{Ex.LC2, Ex.C2, Ex.pi2()}}, Opts);
    net::RunStats Stats = I.run(Seed);
    if (!Stats.AllCompleted) {
      std::cout << "seed " << Seed
                << ": S2 committed to Del and the session wedged:\n  "
                << I.configStr() << "\n\n";
      return;
    }
  }
  std::cout << "no deadlock observed (unexpected)\n\n";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Trace = false, Dot = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace") == 0)
      Trace = true;
    if (std::strcmp(Argv[I], "--dot") == 0)
      Dot = true;
  }

  HistContext Ctx;
  HotelExample Ex = core::makeHotelExample(Ctx);

  std::cout << "== Fig. 1: the policy phi(bl,p,t) ==\n";
  const policy::UsageAutomaton *Phi = Ex.Registry.find(Ctx.symbol("phi"));
  if (Dot) {
    Phi->printDot(Ctx.interner(), std::cout);
  } else {
    std::cout << Phi->numStates()
              << " states; offending: q6; run with --dot for Graphviz\n";
  }
  std::cout << "\n";

  printFigure2(Ctx, Ex);
  printComplianceClaims(Ctx, Ex);
  verifyClients(Ctx, Ex);
  runFigure3(Ctx, Ex, Trace);
  demoDelDeadlock(Ctx, Ex);

  std::cout << "All §2 claims reproduced.\n";
  return 0;
}
