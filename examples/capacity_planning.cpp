//===- examples/capacity_planning.cpp - replication capacity analysis -----===//
///
/// \file
/// The paper assumes services replicate unboundedly and lists bounded
/// availability as future work (§5). This example shows what changes when
/// capacities are finite: two clients, each individually verified, can
/// deadlock each other by grabbing service slots in opposite orders — the
/// dining-philosophers pattern. The whole-network explorer proves the
/// deadlock reachable, pinpoints the fatal schedule, and confirms that
/// one more replica removes it.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "hist/Printer.h"
#include "net/Explorer.h"
#include "net/Interpreter.h"

#include <iostream>

using namespace sus;
using namespace sus::hist;

int main() {
  HistContext Ctx;
  policy::PolicyRegistry Registry; // No security policies: pure progress.

  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Loc L1 = Ctx.symbol("svc1"), L2 = Ctx.symbol("svc2");

  // Each client holds a session on one service while calling the other.
  auto MakeClient = [&](hist::RequestId Outer, hist::RequestId Inner) {
    const Expr *InnerReq = Ctx.request(
        Inner, PolicyRef(),
        Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
    return Ctx.request(
        Outer, PolicyRef(),
        Ctx.seq(InnerReq,
                Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
  };
  const Expr *A = MakeClient(10, 11);
  const Expr *B = MakeClient(20, 21);
  plan::Plan PiA, PiB;
  PiA.bind(10, L1);
  PiA.bind(11, L2);
  PiB.bind(20, L2);
  PiB.bind(21, L1);

  std::cout << "client A: " << print(Ctx, A) << "   plan "
            << PiA.str(Ctx.interner()) << "\n";
  std::cout << "client B: " << print(Ctx, B) << "   plan "
            << PiB.str(Ctx.interner()) << "\n\n";

  for (unsigned Capacity : {1u, 2u}) {
    plan::Repository Repo;
    Repo.add(L1, Echo, Capacity);
    Repo.add(L2, Echo, Capacity);

    // Each client alone is perfectly fine.
    core::Verifier V(Ctx, Repo, Registry);
    bool AValid = V.checkPlan(A, Ctx.symbol("a"), PiA).isValid();
    bool BValid = V.checkPlan(B, Ctx.symbol("b"), PiB).isValid();

    // Together?
    auto R = net::exploreNetwork(Ctx, Repo,
                                 {{Ctx.symbol("a"), A, PiA},
                                  {Ctx.symbol("b"), B, PiB}});

    std::cout << "capacity " << Capacity << " per service:\n";
    std::cout << "  per-client verification: A "
              << (AValid ? "valid" : "invalid") << ", B "
              << (BValid ? "valid" : "invalid") << "\n";
    std::cout << "  network exploration (" << R.States << " states): "
              << (R.CanComplete ? "can complete" : "cannot complete")
              << ", deadlock "
              << (R.DeadlockReachable ? "REACHABLE" : "unreachable")
              << "\n";
    if (R.DeadlockReachable) {
      std::cout << "  fatal schedule:\n";
      for (const std::string &Line : R.DeadlockTrace)
        std::cout << "    --> " << Line << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "Verdict: with one replica each, individually-valid plans "
               "can still wedge the network;\none extra replica per "
               "service removes the contention entirely.\n";
  return 0;
}
