//===- examples/contract_explorer.cpp - inspecting compliance products ----===//
///
/// \file
/// A developer-facing tour of the §4 machinery: projections, ready sets,
/// duals, and the product automaton H1 ⊗ H2 — including the Graphviz
/// rendering of the paper's broker/S2 product, whose red stuck state is
/// the Del message with nobody to receive it.
///
/// Run with --dot to dump the Graphviz digraphs.
///
//===----------------------------------------------------------------------===//

#include "contract/Compliance.h"
#include "contract/Dual.h"
#include "contract/ReadySets.h"
#include "core/HotelExample.h"
#include "hist/Printer.h"
#include "plan/RequestExtract.h"

#include <cstring>
#include <iostream>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

void showReadySets(const HistContext &Ctx, const char *Name,
                   const Expr *Contract) {
  std::cout << Name << " = " << print(Ctx, Contract) << "\n  ready sets:";
  for (const ReadySet &S : readySets(Contract)) {
    std::cout << " {";
    bool First = true;
    for (const CommAction &A : S) {
      if (!First)
        std::cout << ", ";
      First = false;
      std::cout << A.str(Ctx.interner());
    }
    std::cout << "}";
  }
  std::cout << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Dot = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--dot") == 0)
      Dot = true;

  HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);

  // --- Projections and ready sets -----------------------------------------
  std::cout << "== projections (H!) ==\n";
  const Expr *BrokerBody = plan::extractRequests(Ex.Br)[0].body();
  const Expr *BrokerContract = project(Ctx, BrokerBody);
  const Expr *S2Contract = project(Ctx, Ex.S2);
  showReadySets(Ctx, "Br-session!", BrokerContract);
  showReadySets(Ctx, "S2!", S2Contract);
  std::cout << "\n";

  // --- Duals ---------------------------------------------------------------
  std::cout << "== duals ==\n";
  const Expr *Dual = dualContract(Ctx, S2Contract);
  std::cout << "dual(S2!) = " << print(Ctx, Dual) << "\n";
  std::cout << "S2! |- dual(S2!): "
            << (checkCompliance(Ctx, S2Contract, Dual).Compliant ? "yes"
                                                                 : "no")
            << "  (the dual is the canonical compliant partner)\n\n";

  // --- The product automaton ----------------------------------------------
  std::cout << "== the Br x S2 product (Def. 5) ==\n";
  ComplianceProduct Product(Ctx, BrokerContract, S2Contract);
  std::cout << "states: " << Product.numStates()
            << ", language empty: "
            << (Product.isEmptyLanguage() ? "yes (compliant)"
                                          : "no (NOT compliant)")
            << "\n";
  if (auto Final = Product.firstFinal()) {
    std::cout << "stuck state: client = "
              << print(Ctx, Product.state(*Final).Client)
              << " | server = " << print(Ctx, Product.state(*Final).Server)
              << "\n";
  }
  if (Dot) {
    Product.printDot(Ctx, std::cout, "br_x_s2");
  }

  // A compliant product for contrast.
  ComplianceProduct Good(Ctx, BrokerContract, project(Ctx, Ex.S3));
  std::cout << "\nBr x S3: states " << Good.numStates() << ", "
            << (Good.isEmptyLanguage() ? "compliant" : "not compliant")
            << "\n";
  if (Dot)
    Good.printDot(Ctx, std::cout, "br_x_s3");
  return 0;
}
