//===- bench/MetricsOut.h - --metrics-out=FILE for the benches --*- C++ -*-===//
///
/// \file
/// Shared support for emitting the pipeline metrics registry from the
/// benchmark binaries: `bench_x --metrics-out=FILE` writes the same
/// sus-metrics-v1 JSON as `susc --metrics-out FILE` after the benchmarks
/// ran. The flag is stripped before benchmark::Initialize (which would
/// otherwise reject it as unrecognized).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_BENCH_METRICS_OUT_H
#define SUS_BENCH_METRICS_OUT_H

#include "support/Metrics.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace sus {
namespace bench {

/// Removes `--metrics-out=FILE` from \p Argv, compacting the array and
/// shrinking \p Argc. Enables the metrics registry when the flag is
/// present. Returns the requested path, or "" when the flag was absent.
inline std::string stripMetricsOutArg(int &Argc, char **Argv) {
  constexpr const char *Flag = "--metrics-out=";
  const size_t FlagLen = std::strlen(Flag);
  std::string Path;
  int Out = 0;
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], Flag, FlagLen) == 0) {
      Path = Argv[I] + FlagLen;
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  Argc = Out;
  if (!Path.empty())
    metrics::enable();
  return Path;
}

/// Writes the registry JSON to \p Path. No-op for an empty path. Returns
/// 0 on success, 1 (with a diagnostic) if the file cannot be written.
inline int writeMetricsOut(const std::string &Path) {
  if (Path.empty())
    return 0;
  std::ofstream OutFile(Path);
  if (!OutFile) {
    std::fprintf(stderr, "bench: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  metrics::writeJson(OutFile);
  if (!OutFile.good()) {
    std::fprintf(stderr, "bench: error writing '%s'\n", Path.c_str());
    return 1;
  }
  return 0;
}

} // namespace bench
} // namespace sus

#endif // SUS_BENCH_METRICS_OUT_H
