//===- bench/Workloads.h - Synthetic workload generators --------*- C++ -*-===//
///
/// \file
/// Parameterized families of contracts, policies, repositories and
/// networks used by the benchmark binaries (experiments B1–B6 in
/// DESIGN.md). Generators are deterministic in their parameters.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_BENCH_WORKLOADS_H
#define SUS_BENCH_WORKLOADS_H

#include "hist/HistContext.h"
#include "plan/Plan.h"
#include "policy/Prelude.h"

#include <string>
#include <vector>

namespace sus {
namespace bench {

/// A chain of N sends followed by termination: a1!.a2!...aN!.
inline const hist::Expr *sendChain(hist::HistContext &Ctx, unsigned N) {
  const hist::Expr *E = Ctx.empty();
  for (unsigned I = N; I > 0; --I)
    E = Ctx.send("ch" + std::to_string(I - 1), E);
  return E;
}

/// The matching chain of receives.
inline const hist::Expr *recvChain(hist::HistContext &Ctx, unsigned N) {
  const hist::Expr *E = Ctx.empty();
  for (unsigned I = N; I > 0; --I)
    E = Ctx.receive("ch" + std::to_string(I - 1), E);
  return E;
}

/// An internal choice over W channels, each answering with Done?.
inline const hist::Expr *wideSelect(hist::HistContext &Ctx, unsigned W) {
  std::vector<hist::ChoiceBranch> Branches;
  Branches.reserve(W);
  for (unsigned I = 0; I < W; ++I)
    Branches.push_back(
        {hist::CommAction::output(Ctx.symbol("opt" + std::to_string(I))),
         Ctx.receive("Done", Ctx.empty())});
  return Ctx.intChoice(std::move(Branches));
}

/// The matching external choice over W channels.
inline const hist::Expr *wideBranch(hist::HistContext &Ctx, unsigned W,
                                    bool DropLast = false) {
  std::vector<hist::ChoiceBranch> Branches;
  for (unsigned I = 0; I < (DropLast ? W - 1 : W); ++I)
    Branches.push_back(
        {hist::CommAction::input(Ctx.symbol("opt" + std::to_string(I))),
         Ctx.send("Done", Ctx.empty())});
  return Ctx.extChoice(std::move(Branches));
}

/// A K-phase recursive protocol: µh. p0!.q0?.p1!.q1?...h.
inline const hist::Expr *recursiveProtocol(hist::HistContext &Ctx,
                                           unsigned Phases, bool Sender) {
  const hist::Expr *Body = Ctx.var("h");
  for (unsigned I = Phases; I > 0; --I) {
    std::string P = "p" + std::to_string(I - 1);
    std::string Q = "q" + std::to_string(I - 1);
    if (Sender)
      Body = Ctx.send(P, Ctx.receive(Q, Body));
    else
      Body = Ctx.receive(P, Ctx.send(Q, Body));
  }
  return Ctx.mu("h", Body);
}

/// An event sequence of length N over `NumNames` distinct event names.
inline const hist::Expr *eventChain(hist::HistContext &Ctx, unsigned N,
                                    unsigned NumNames = 8) {
  std::vector<const hist::Expr *> Parts;
  Parts.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Parts.push_back(Ctx.event("ev" + std::to_string(I % NumNames),
                              static_cast<int64_t>(I)));
  return Ctx.seq(Parts);
}

/// Wraps \p Body in N nested framings of distinct policies named
/// "pol0".."pol<N-1>".
inline const hist::Expr *nestedFramings(hist::HistContext &Ctx,
                                        const hist::Expr *Body, unsigned N) {
  const hist::Expr *E = Body;
  for (unsigned I = 0; I < N; ++I) {
    hist::PolicyRef Ref;
    Ref.Name = Ctx.symbol("pol" + std::to_string(I));
    E = Ctx.framing(Ref, E);
  }
  return E;
}

/// Registers "pol0".."pol<N-1>" as at-most-K policies over event "evHot".
inline void registerPolicies(policy::PolicyRegistry &Registry,
                             StringInterner &In, unsigned N, unsigned K) {
  for (unsigned I = 0; I < N; ++I)
    Registry.add(policy::makeAtMostPolicy(In, "pol" + std::to_string(I),
                                          "evHot", K));
}

/// A repository of \p NumServices echo services "svc0".. listening on Ping
/// and answering Pong; `Bad` ones answer on an unmatched channel.
inline plan::Repository echoRepository(hist::HistContext &Ctx,
                                       unsigned NumServices,
                                       unsigned NumBad) {
  plan::Repository Repo;
  for (unsigned I = 0; I < NumServices; ++I) {
    const char *Answer = I < NumBad ? "Quux" : "Pong";
    const hist::Expr *Svc =
        Ctx.receive("Ping", Ctx.send(Answer, Ctx.empty()));
    Repo.add(Ctx.symbol("svc" + std::to_string(I)), Svc);
  }
  return Repo;
}

/// A client issuing \p NumRequests echo requests in sequence.
inline const hist::Expr *echoClient(hist::HistContext &Ctx,
                                    unsigned NumRequests) {
  std::vector<const hist::Expr *> Parts;
  for (unsigned I = 0; I < NumRequests; ++I)
    Parts.push_back(Ctx.request(
        100 + I, hist::PolicyRef(),
        Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
  return Ctx.seq(Parts);
}

/// The client side of a \p Depth-round request/reply protocol:
/// p0!.q0?.p1!.q1?…, the B7 verifier workload.
inline const hist::Expr *chattyProtocol(hist::HistContext &Ctx,
                                        unsigned Depth) {
  const hist::Expr *E = Ctx.empty();
  for (unsigned I = Depth; I > 0; --I)
    E = Ctx.send("p" + std::to_string(I - 1),
                 Ctx.receive("q" + std::to_string(I - 1), E));
  return E;
}

/// The service side of the \p Depth-round protocol; a `Bad` service
/// answers the last round on an unmatched channel, so it fails §4
/// compliance. Logs \p EventsPerCall "evHot" access events after the
/// protocol (exercising the policy monitors of the static security
/// check).
inline const hist::Expr *chattyService(hist::HistContext &Ctx,
                                       unsigned Depth, bool Bad,
                                       unsigned EventsPerCall = 0) {
  const hist::Expr *E = Ctx.empty();
  for (unsigned D = Depth; D > 0; --D) {
    std::string Answer =
        (Bad && D == Depth) ? "Quux" : "q" + std::to_string(D - 1);
    E = Ctx.receive("p" + std::to_string(D - 1), Ctx.send(Answer, E));
    if (D == 1)
      for (unsigned Ev = 0; Ev < EventsPerCall; ++Ev)
        E = Ctx.seq(E, Ctx.event("evHot", static_cast<int64_t>(Ev)));
  }
  return E;
}

/// A repository of \p NumServices services "svc0".. each speaking the
/// matching \p Depth-round protocol; the first `NumBad` are bad.
inline plan::Repository chattyRepository(hist::HistContext &Ctx,
                                         unsigned NumServices,
                                         unsigned NumBad, unsigned Depth,
                                         unsigned EventsPerCall = 0) {
  plan::Repository Repo;
  for (unsigned I = 0; I < NumServices; ++I)
    Repo.add(Ctx.symbol("svc" + std::to_string(I)),
             chattyService(Ctx, Depth, I < NumBad, EventsPerCall));
  return Repo;
}

/// A client issuing \p NumRequests chatty requests in sequence, each under
/// \p Policy (use the trivial PolicyRef for an unconstrained client).
inline const hist::Expr *chattyClient(hist::HistContext &Ctx,
                                      unsigned NumRequests, unsigned Depth,
                                      hist::PolicyRef Policy = {}) {
  std::vector<const hist::Expr *> Parts;
  for (unsigned I = 0; I < NumRequests; ++I)
    Parts.push_back(
        Ctx.request(100 + I, Policy, chattyProtocol(Ctx, Depth)));
  return Ctx.seq(Parts);
}

} // namespace bench
} // namespace sus

#endif // SUS_BENCH_WORKLOADS_H
