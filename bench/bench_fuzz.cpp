//===- bench/bench_fuzz.cpp - B10: differential fuzzing throughput --------===//
///
/// \file
/// Experiment B10 (DESIGN.md §12): throughput of the seeded differential
/// harness — programs generated per second, and full seeds checked per
/// second through all oracles (compliance cross-check, BPA trace
/// equivalence, fused-monitor vs legacy probe, chaos soak). Sets the
/// budget for the nightly sweep: seeds/night = rate × wall budget.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"
#include "fuzz/Generator.h"

#include <benchmark/benchmark.h>

using namespace sus;

namespace {

void BM_GenerateProgram(benchmark::State &State) {
  fuzz::GeneratorOptions Opts;
  Opts.Depth = static_cast<unsigned>(State.range(0));
  uint64_t Seed = 0;
  for (auto _ : State) {
    fuzz::GeneratedProgram P = fuzz::generateProgram(Seed++, Opts);
    benchmark::DoNotOptimize(P.Decls);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GenerateProgram)->Arg(3)->Arg(4)->Arg(6);

void BM_DifferentialSeed(benchmark::State &State) {
  fuzz::FuzzOptions Opts;
  Opts.Chaos = State.range(0) != 0;
  uint64_t Seed = 0;
  for (auto _ : State) {
    fuzz::SeedReport R = fuzz::runSeed(Seed++, Opts);
    if (!R.clean())
      State.SkipWithError("differential harness found a divergence");
    benchmark::DoNotOptimize(R.Divergences);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DifferentialSeed)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
