//===- bench/bench_compliance.cpp - B1: compliance-check scaling ----------===//
///
/// \file
/// Experiment B1 (DESIGN.md): cost of the §4 compliance model check (the
/// H1 ⊗ H2 product automaton) as contracts grow in depth, width and
/// recursion, plus the cost asymmetry between compliant runs (whole space
/// explored) and non-compliant ones (early counterexample).
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"
#include "contract/Compliance.h"

#include <benchmark/benchmark.h>

using namespace sus;
using namespace sus::bench;

namespace {

void BM_ComplianceChainDepth(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    auto R = contract::checkCompliance(Ctx, sendChain(Ctx, N),
                                       recvChain(Ctx, N));
    benchmark::DoNotOptimize(R.Compliant);
    State.counters["states"] = static_cast<double>(R.ExploredStates);
    if (!R.Compliant)
      State.SkipWithError("chain must be compliant");
  }
}
BENCHMARK(BM_ComplianceChainDepth)->RangeMultiplier(4)->Range(4, 1024);

void BM_ComplianceChoiceWidth(benchmark::State &State) {
  unsigned W = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    auto R = contract::checkCompliance(Ctx, wideBranch(Ctx, W),
                                       wideSelect(Ctx, W));
    benchmark::DoNotOptimize(R.Compliant);
    State.counters["states"] = static_cast<double>(R.ExploredStates);
  }
}
BENCHMARK(BM_ComplianceChoiceWidth)->RangeMultiplier(4)->Range(4, 1024);

void BM_ComplianceRecursivePhases(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    auto R = contract::checkCompliance(
        Ctx, recursiveProtocol(Ctx, K, /*Sender=*/true),
        recursiveProtocol(Ctx, K, /*Sender=*/false));
    benchmark::DoNotOptimize(R.Compliant);
    State.counters["states"] = static_cast<double>(R.ExploredStates);
  }
}
BENCHMARK(BM_ComplianceRecursivePhases)->RangeMultiplier(4)->Range(2, 512);

/// Non-compliance detected at the end of a long chain: the witness is the
/// whole chain.
void BM_NonComplianceLateWitness(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    // Server is one receive short.
    auto R = contract::checkCompliance(Ctx, sendChain(Ctx, N),
                                       recvChain(Ctx, N - 1));
    benchmark::DoNotOptimize(R.Compliant);
    if (R.Compliant)
      State.SkipWithError("must be non-compliant");
    State.counters["witness_len"] =
        static_cast<double>(R.Witness ? R.Witness->Path.size() : 0);
  }
}
BENCHMARK(BM_NonComplianceLateWitness)->RangeMultiplier(4)->Range(4, 1024);

/// Non-compliance visible in the very first ready set (the §2 Del shape):
/// detection cost is constant regardless of the residual protocol size.
void BM_NonComplianceEarlyDel(benchmark::State &State) {
  unsigned W = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    auto R = contract::checkCompliance(
        Ctx, wideBranch(Ctx, W, /*DropLast=*/true), wideSelect(Ctx, W));
    benchmark::DoNotOptimize(R.Compliant);
    if (R.Compliant)
      State.SkipWithError("must be non-compliant");
  }
}
BENCHMARK(BM_NonComplianceEarlyDel)->RangeMultiplier(4)->Range(4, 1024);

/// Cross-validation cost: the literal Def. 4 checker computes ready sets
/// at every pair — measurably heavier than the Def. 5 product (same
/// verdicts; see ContractTest cross-validation).
void BM_DirectCheckerChainDepth(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    bool C = contract::checkComplianceDirect(Ctx, sendChain(Ctx, N),
                                             recvChain(Ctx, N));
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_DirectCheckerChainDepth)->RangeMultiplier(4)->Range(4, 1024);

} // namespace

BENCHMARK_MAIN();
