//===- bench/bench_projection.cpp - B6: expression-pass throughput --------===//
///
/// \file
/// Experiment B6 (DESIGN.md): throughput of the syntax-directed passes —
/// projection H!, ready sets, well-formedness, the BPA rendering, LTS
/// materialization and the λ effect extraction — as expressions grow.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"
#include "bpa/FromHist.h"
#include "contract/Project.h"
#include "contract/ReadySets.h"
#include "hist/TransitionSystem.h"
#include "hist/WellFormed.h"
#include "lambda/TypeEffect.h"

#include <benchmark/benchmark.h>

using namespace sus;
using namespace sus::bench;

namespace {

/// A mixed expression: events, framings and communications interleaved.
const hist::Expr *mixedExpr(hist::HistContext &Ctx, unsigned N) {
  std::vector<const hist::Expr *> Parts;
  hist::PolicyRef Ref;
  Ref.Name = Ctx.symbol("pol0");
  for (unsigned I = 0; I < N; ++I) {
    Parts.push_back(Ctx.event("ev" + std::to_string(I % 8),
                              static_cast<int64_t>(I)));
    Parts.push_back(Ctx.framing(Ref, Ctx.event("framed")));
    Parts.push_back(
        Ctx.send("c" + std::to_string(I % 4),
                 Ctx.receive("d" + std::to_string(I % 4), Ctx.empty())));
  }
  return Ctx.seq(Parts);
}

void BM_Projection(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    const hist::Expr *E = mixedExpr(Ctx, N);
    benchmark::DoNotOptimize(contract::project(Ctx, E));
  }
}
BENCHMARK(BM_Projection)->RangeMultiplier(4)->Range(4, 1024);

void BM_ReadySets(benchmark::State &State) {
  unsigned W = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  const hist::Expr *E = wideSelect(Ctx, W);
  for (auto _ : State)
    benchmark::DoNotOptimize(contract::readySets(E));
}
BENCHMARK(BM_ReadySets)->RangeMultiplier(4)->Range(4, 1024);

void BM_WellFormed(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  const hist::Expr *E = mixedExpr(Ctx, N);
  for (auto _ : State)
    benchmark::DoNotOptimize(hist::isWellFormed(Ctx, E));
}
BENCHMARK(BM_WellFormed)->RangeMultiplier(4)->Range(4, 1024);

void BM_BpaRendering(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    bpa::BpaContext Bpa;
    const hist::Expr *E = mixedExpr(Ctx, N);
    benchmark::DoNotOptimize(bpa::fromHist(Bpa, Ctx, E));
  }
}
BENCHMARK(BM_BpaRendering)->RangeMultiplier(4)->Range(4, 1024);

void BM_LtsMaterialization(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  const hist::Expr *E = mixedExpr(Ctx, N);
  size_t States = 0;
  for (auto _ : State) {
    hist::TransitionSystem Ts(Ctx, E);
    States = Ts.numStates();
    benchmark::DoNotOptimize(Ts.numStates());
  }
  State.counters["lts_states"] = static_cast<double>(States);
}
BENCHMARK(BM_LtsMaterialization)->RangeMultiplier(4)->Range(4, 256);

void BM_LambdaEffectExtraction(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    lambda::LambdaContext L(Ctx);
    DiagnosticEngine Diags;
    lambda::EffectSystem ES(L, Diags);
    // A chain of N event;send;recv blocks.
    const lambda::Term *T = L.unit();
    for (unsigned I = 0; I < N; ++I)
      T = L.seq(L.event("ev" + std::to_string(I % 8)),
                L.seq(L.send("c" + std::to_string(I % 4)),
                      L.seq(L.recv("d" + std::to_string(I % 4)), T)));
    auto R = ES.infer(T);
    benchmark::DoNotOptimize(R.has_value());
  }
}
BENCHMARK(BM_LambdaEffectExtraction)->RangeMultiplier(4)->Range(4, 1024);

void BM_HashConsingSharing(benchmark::State &State) {
  // Rebuilding the same expression N times touches the uniquing table
  // only: measures hash-consing hit cost.
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  const hist::Expr *First = mixedExpr(Ctx, N);
  for (auto _ : State) {
    const hist::Expr *Again = mixedExpr(Ctx, N);
    if (Again != First)
      State.SkipWithError("hash-consing must share");
    benchmark::DoNotOptimize(Again);
  }
}
BENCHMARK(BM_HashConsingSharing)->RangeMultiplier(4)->Range(4, 256);

} // namespace

BENCHMARK_MAIN();
