//===- bench/bench_automata.cpp - B5: automata substrate ops --------------===//
///
/// \file
/// Experiment B5 (DESIGN.md): scaling of the finite-automata substrate the
/// model checking rests on — determinization, product, minimization,
/// emptiness — over seeded random NFAs.
///
//===----------------------------------------------------------------------===//

#include "MetricsOut.h"
#include "automata/Ops.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace sus::automata;

namespace {

Nfa randomNfa(std::mt19937 &Rng, unsigned NumStates, unsigned NumSymbols,
              double EdgeFactor) {
  Nfa N;
  for (unsigned I = 0; I < NumStates; ++I)
    N.addState(Rng() % 5 == 0);
  N.setStart(0);
  unsigned NumEdges = static_cast<unsigned>(NumStates * EdgeFactor);
  for (unsigned I = 0; I < NumEdges; ++I)
    N.addEdge(Rng() % NumStates, Rng() % NumSymbols, Rng() % NumStates);
  return N;
}

void BM_Determinize(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(42);
  Nfa A = randomNfa(Rng, N, 4, 3.0);
  size_t States = 0;
  for (auto _ : State) {
    Dfa D = determinize(A);
    States = D.numStates();
    benchmark::DoNotOptimize(D.numStates());
  }
  State.counters["dfa_states"] = static_cast<double>(States);
}
BENCHMARK(BM_Determinize)->RangeMultiplier(2)->Range(8, 256);

void BM_Intersect(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(7);
  Dfa A = determinize(randomNfa(Rng, N, 4, 2.5));
  Dfa B = determinize(randomNfa(Rng, N, 4, 2.5));
  for (auto _ : State) {
    Dfa I = intersect(A, B);
    benchmark::DoNotOptimize(I.numStates());
  }
}
BENCHMARK(BM_Intersect)->RangeMultiplier(2)->Range(8, 256);

void BM_Minimize(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(11);
  Dfa D = determinize(randomNfa(Rng, N, 3, 2.5));
  size_t MinStates = 0;
  for (auto _ : State) {
    Dfa M = minimize(D);
    MinStates = M.numStates();
    benchmark::DoNotOptimize(M.numStates());
  }
  State.counters["min_states"] = static_cast<double>(MinStates);
}
BENCHMARK(BM_Minimize)->RangeMultiplier(2)->Range(8, 128);

void BM_EmptinessWitness(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(23);
  Dfa D = determinize(randomNfa(Rng, N, 4, 2.0));
  for (auto _ : State) {
    auto W = shortestWitness(D);
    benchmark::DoNotOptimize(W.has_value());
  }
}
BENCHMARK(BM_EmptinessWitness)->RangeMultiplier(2)->Range(8, 512);

void BM_Equivalence(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(31);
  Dfa A = determinize(randomNfa(Rng, N, 3, 2.0));
  Dfa B = minimize(A); // Equivalent by construction.
  for (auto _ : State) {
    bool Eq = equivalent(A, B);
    benchmark::DoNotOptimize(Eq);
  }
}
BENCHMARK(BM_Equivalence)->RangeMultiplier(2)->Range(8, 64);

//===----------------------------------------------------------------------===//
// On-the-fly product checks (no materialized complement/product)
//===----------------------------------------------------------------------===//

void BM_IntersectIsEmpty(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(7); // Same inputs as BM_Intersect.
  Dfa A = determinize(randomNfa(Rng, N, 4, 2.5));
  Dfa B = determinize(randomNfa(Rng, N, 4, 2.5));
  for (auto _ : State) {
    bool Empty = intersectIsEmpty(A, B);
    benchmark::DoNotOptimize(Empty);
  }
}
BENCHMARK(BM_IntersectIsEmpty)->RangeMultiplier(2)->Range(8, 256);

void BM_IntersectWitness(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(7);
  Dfa A = determinize(randomNfa(Rng, N, 4, 2.5));
  Dfa B = determinize(randomNfa(Rng, N, 4, 2.5));
  for (auto _ : State) {
    auto W = intersectWitness(A, B);
    benchmark::DoNotOptimize(W.has_value());
  }
}
BENCHMARK(BM_IntersectWitness)->RangeMultiplier(2)->Range(8, 256);

void BM_ContainedIn(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(31); // Same inputs as BM_Equivalence.
  Dfa A = determinize(randomNfa(Rng, N, 3, 2.0));
  Dfa B = minimize(A); // A ⊆ B holds: the check explores everything.
  for (auto _ : State) {
    bool Sub = containedIn(A, B);
    benchmark::DoNotOptimize(Sub);
  }
}
BENCHMARK(BM_ContainedIn)->RangeMultiplier(2)->Range(8, 64);

} // namespace

/// Like BENCHMARK_MAIN(), plus a `--quick` alias that CI uses (rewritten
/// to a short --benchmark_min_time so the whole suite smoke-runs in
/// seconds; the bundled benchmark library wants a plain double there) and
/// `--metrics-out=FILE` to dump the kernel-time metrics registry as
/// sus-metrics-v1 JSON after the run.
int main(int argc, char **argv) {
  std::string MetricsPath = sus::bench::stripMetricsOutArg(argc, argv);
  std::vector<char *> Args;
  static char MinTime[] = "--benchmark_min_time=0.01";
  for (int I = 0; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Args.push_back(MinTime);
    else
      Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return sus::bench::writeMetricsOut(MetricsPath);
}
