//===- bench/bench_monitor.cpp - B8: fused-DFA monitor engine -------------===//
///
/// \file
/// Experiment B8 (DESIGN.md §9): per-event admission throughput of the
/// fused-DFA runtime monitor against the legacy per-policy probe, plus
/// fusion cost, cache-hit cost, and sharded batch ingestion through the
/// MonitorEngine (with a p99 batch-latency counter).
///
/// The workload is a fixed session shape: 4 parametric policy shapes,
/// each instantiated twice (8 fused policies, the mask is a single
/// uint32), over a 24-event closed universe. Offending edges are gated
/// on an event value the trace never fires, so monitors churn state on
/// every label but never latch a violation — the same batch can be
/// re-ingested indefinitely and neither side ever takes the trivial
/// "already violated" early-out.
///
//===----------------------------------------------------------------------===//

#include "MetricsOut.h"
#include "hist/HistContext.h"
#include "monitor/Fused.h"
#include "monitor/MonitorEngine.h"
#include "monitor/SessionMonitor.h"
#include "policy/Validity.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace sus;
using hist::Event;
using hist::Label;
using hist::PolicyRef;

namespace {

/// The shared benchmark scenario. Heap-allocated once (HistContext pins
/// its address) and reused by every benchmark.
struct Workload {
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  std::vector<PolicyRef> Refs;
  std::vector<Event> Universe;
  std::vector<Label> FrameOpens; ///< One frame per ref, fired at t=0.
  std::vector<Label> Events;     ///< Violation-free event stream.
  std::vector<Label> Trace;      ///< FrameOpens ++ Events.
};

/// Shape i: a 4-state churn cycle over events e(2i), e(2i+1) with a
/// nondeterministic shortcut and a wildcard reset. The only edges into
/// the offending state require event value 3; the trace fires values
/// 1 and 2 only, so the monitor steps on every event yet never offends.
policy::UsageAutomaton makeShape(StringInterner &In, unsigned I,
                                 const std::vector<Symbol> &Names) {
  policy::UsageAutomaton A(In.intern("phi" + std::to_string(I)),
                           {{In.intern("t"), /*IsSet=*/false}});
  for (unsigned Q = 0; Q < 4; ++Q)
    A.addState("q" + std::to_string(Q), /*Offending=*/Q == 3);
  Symbol EvA = Names[(2 * I) % Names.size()];
  Symbol EvB = Names[(2 * I + 1) % Names.size()];
  Symbol EvC = Names[(2 * I + 3) % Names.size()];
  using policy::CmpOp;
  using policy::Guard;
  A.addEdge(0, EvA, Guard::cmpParam(CmpOp::LE, 0), 1);
  A.addEdge(1, EvB, Guard::cmpConst(CmpOp::LE, Value::integer(2)), 2);
  A.addEdge(0, EvC, Guard::always(), 2); // Nondeterministic shortcut.
  A.addWildcardEdge(2, 0);               // Reset churn.
  // Offending is reachable only on value 3 — never fired by the trace.
  A.addEdge(2, EvA, Guard::cmpConst(CmpOp::EQ, Value::integer(3)), 3);
  A.addEdge(1, EvB, Guard::cmpConst(CmpOp::EQ, Value::integer(3)), 3);
  return A;
}

std::unique_ptr<Workload> buildWorkload(size_t NumEvents) {
  auto WP = std::make_unique<Workload>();
  Workload &W = *WP;
  StringInterner &In = W.Ctx.interner();

  std::vector<Symbol> Names;
  for (unsigned I = 0; I < 8; ++I)
    Names.push_back(In.intern("e" + std::to_string(I)));

  for (unsigned I = 0; I < 4; ++I) {
    policy::UsageAutomaton A = makeShape(In, I, Names);
    Symbol Name = A.name();
    W.Registry.add(std::move(A));
    // Two instantiations per shape: 8 fused policies total.
    W.Refs.push_back({Name, {{Value::integer(2)}}});
    W.Refs.push_back({Name, {{Value::integer(3)}}});
  }

  for (Symbol N : Names)
    for (int64_t V = 1; V <= 3; ++V)
      W.Universe.push_back({N, Value::integer(V)});

  for (const PolicyRef &R : W.Refs)
    W.FrameOpens.push_back(Label::frameOpen(R));

  std::mt19937_64 Rng(0xb8b8b8b8ull);
  for (size_t I = 0; I < NumEvents; ++I)
    W.Events.push_back(Label::event(
        {Names[Rng() % Names.size()],
         Value::integer(static_cast<int64_t>(1 + Rng() % 2))}));

  W.Trace = W.FrameOpens;
  W.Trace.insert(W.Trace.end(), W.Events.begin(), W.Events.end());

  // Sanity: two full passes must stay valid (the engine benchmarks rely
  // on the batch being re-ingestable without latching a violation).
  policy::ValidityChecker C(W.Registry, W.Ctx.interner());
  for (int Pass = 0; Pass < 2; ++Pass)
    for (const Label &L : W.Trace)
      if (!C.append(L)) {
        std::fprintf(stderr, "bench_monitor: workload trace violates\n");
        std::abort();
      }
  return WP;
}

Workload &workload() {
  static std::unique_ptr<Workload> W = buildWorkload(/*NumEvents=*/1024);
  return *W;
}

const monitor::FusedPolicyAutomaton &fused() {
  static monitor::FusedPolicyAutomaton F = [] {
    Workload &W = workload();
    Outcome<monitor::FusedPolicyAutomaton> Out = monitor::fusePolicies(
        W.Registry, W.Ctx.interner(), W.Refs, W.Universe);
    if (!Out.ok()) {
      std::fprintf(stderr, "bench_monitor: fusion refused: %s\n",
                   Out.exhausted().str().c_str());
      std::abort();
    }
    return Out.takeValue();
  }();
  return F;
}

//===----------------------------------------------------------------------===//
// Per-event admission: legacy probe vs fused step
//===----------------------------------------------------------------------===//

/// Seed baseline: what Interpreter::steps()+apply() cost per event before
/// this PR — probe every active PolicyMonitor by copy, then commit.
void BM_LegacyProbeAdvance(benchmark::State &State) {
  Workload &W = workload();
  for (auto _ : State) {
    policy::ValidityChecker C(W.Registry, W.Ctx.interner());
    for (const Label &L : W.Trace) {
      bool Admit = C.wouldRemainValid(L);
      benchmark::DoNotOptimize(Admit);
      C.append(L);
    }
    benchmark::DoNotOptimize(C.isValid());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(W.Trace.size()));
}
BENCHMARK(BM_LegacyProbeAdvance);

/// Legacy commit path alone (no admission probe): the floor the old
/// monitors can reach even with probing optimized away.
void BM_LegacyAdvance(benchmark::State &State) {
  Workload &W = workload();
  for (auto _ : State) {
    policy::ValidityChecker C(W.Registry, W.Ctx.interner());
    for (const Label &L : W.Trace)
      benchmark::DoNotOptimize(C.append(L));
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(W.Trace.size()));
}
BENCHMARK(BM_LegacyAdvance);

/// Fused probe+commit: one stepIndex + mask test per event, the same
/// admission question BM_LegacyProbeAdvance answers.
void BM_FusedProbeAdvance(benchmark::State &State) {
  const monitor::FusedPolicyAutomaton &F = fused();
  Workload &W = workload();
  for (auto _ : State) {
    monitor::SessionMonitor M(F);
    for (const Label &L : W.Trace) {
      bool Admit = M.wouldAdmit(L);
      benchmark::DoNotOptimize(Admit);
      M.advance(L);
    }
    benchmark::DoNotOptimize(M.isViolated());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(W.Trace.size()));
  State.counters["fused_states"] = static_cast<double>(F.numStates());
}
BENCHMARK(BM_FusedProbeAdvance);

/// Fused commit path alone, mirroring BM_LegacyAdvance.
void BM_FusedAdvance(benchmark::State &State) {
  const monitor::FusedPolicyAutomaton &F = fused();
  Workload &W = workload();
  for (auto _ : State) {
    monitor::SessionMonitor M(F);
    for (const Label &L : W.Trace)
      benchmark::DoNotOptimize(M.advance(L));
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(W.Trace.size()));
}
BENCHMARK(BM_FusedAdvance);

//===----------------------------------------------------------------------===//
// Fusion construction and cache hits
//===----------------------------------------------------------------------===//

void BM_Fusion(benchmark::State &State) {
  Workload &W = workload();
  size_t States = 0;
  for (auto _ : State) {
    Outcome<monitor::FusedPolicyAutomaton> Out = monitor::fusePolicies(
        W.Registry, W.Ctx.interner(), W.Refs, W.Universe);
    States = Out.ok() ? Out.value().numStates() : 0;
    benchmark::DoNotOptimize(States);
  }
  State.counters["fused_states"] = static_cast<double>(States);
}
BENCHMARK(BM_Fusion);

/// Cache hit: canonicalize + fingerprint + map lookup — the cost every
/// session after the first pays for its fused DFA.
void BM_FusionCacheHit(benchmark::State &State) {
  Workload &W = workload();
  monitor::FusedCache Cache;
  if (!Cache.fuse(W.Registry, W.Ctx.interner(), W.Refs, W.Universe)) {
    State.SkipWithError("priming fusion refused");
    return;
  }
  for (auto _ : State) {
    auto F = Cache.fuse(W.Registry, W.Ctx.interner(), W.Refs, W.Universe);
    benchmark::DoNotOptimize(F.get());
  }
  State.counters["cache_hits"] =
      static_cast<double>(Cache.stats().Hits);
}
BENCHMARK(BM_FusionCacheHit);

//===----------------------------------------------------------------------===//
// MonitorEngine: sharded batch ingestion (events/sec + p99 batch latency)
//===----------------------------------------------------------------------===//

/// Ingests an 8192-item batch over 64 sessions; range(0) is the worker
/// count (1 = no pool). Reports items/sec and the p99 wall-clock latency
/// of a whole ingest() call in microseconds.
void BM_EngineIngest(benchmark::State &State) {
  Workload &W = workload();
  monitor::MonitorEngine::Options EO;
  EO.Workers = static_cast<unsigned>(State.range(0));
  monitor::MonitorEngine Engine(W.Registry, W.Ctx.interner(), EO);

  constexpr unsigned NumSessions = 64;
  for (unsigned I = 0; I < NumSessions; ++I) {
    auto S = Engine.openSession(W.Refs, W.Universe);
    if (!Engine.isFused(S)) {
      State.SkipWithError("session unexpectedly fell back to legacy");
      return;
    }
    for (const Label &L : W.FrameOpens)
      Engine.advance(S, L);
  }

  std::vector<monitor::MonitorEngine::BatchItem> Batch;
  constexpr size_t BatchSize = 8192;
  for (size_t I = 0; I < BatchSize; ++I)
    Batch.push_back({static_cast<monitor::MonitorEngine::SessionId>(
                         I % NumSessions),
                     W.Events[I % W.Events.size()]});

  std::vector<uint8_t> Decisions;
  std::vector<double> LatencyUs;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    Engine.ingest(Batch, &Decisions);
    auto T1 = std::chrono::steady_clock::now();
    LatencyUs.push_back(
        std::chrono::duration<double, std::micro>(T1 - T0).count());
    benchmark::DoNotOptimize(Decisions.data());
  }
  std::sort(LatencyUs.begin(), LatencyUs.end());
  double P99 = 0.0;
  if (!LatencyUs.empty())
    P99 = LatencyUs[std::min(LatencyUs.size() - 1,
                             (LatencyUs.size() * 99) / 100)];
  State.counters["p99_batch_us"] = P99;
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(BatchSize));
}
// Real time: the calling thread parks in waitIdle while pool workers do
// the stepping, so CPU-time rates would be meaningless for Workers > 1.
BENCHMARK(BM_EngineIngest)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Same batch through sessions forced onto the legacy fallback (fusion
/// refused by a 1-state governor budget): the engine-level baseline.
void BM_EngineIngestLegacyFallback(benchmark::State &State) {
  Workload &W = workload();
  ResourceGovernor Gov;
  Gov.setLimit(ResourceKind::ProductStates, 1);
  monitor::MonitorEngine::Options EO;
  EO.Workers = 1;
  EO.Gov = &Gov;
  monitor::MonitorEngine Engine(W.Registry, W.Ctx.interner(), EO);

  constexpr unsigned NumSessions = 64;
  for (unsigned I = 0; I < NumSessions; ++I) {
    auto S = Engine.openSession(W.Refs, W.Universe);
    if (Engine.isFused(S)) {
      State.SkipWithError("session unexpectedly fused under a 1-state cap");
      return;
    }
    for (const Label &L : W.FrameOpens)
      Engine.advance(S, L);
  }

  std::vector<monitor::MonitorEngine::BatchItem> Batch;
  constexpr size_t BatchSize = 8192;
  for (size_t I = 0; I < BatchSize; ++I)
    Batch.push_back({static_cast<monitor::MonitorEngine::SessionId>(
                         I % NumSessions),
                     W.Events[I % W.Events.size()]});

  std::vector<uint8_t> Decisions;
  for (auto _ : State) {
    Engine.ingest(Batch, &Decisions);
    benchmark::DoNotOptimize(Decisions.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(BatchSize));
}
BENCHMARK(BM_EngineIngestLegacyFallback);

} // namespace

/// Like BENCHMARK_MAIN(), plus the `--quick` alias CI uses (rewritten to
/// a short --benchmark_min_time) and `--metrics-out=FILE` (sus-metrics-v1
/// JSON, including the monitor.* counters, dumped after the run).
int main(int argc, char **argv) {
  std::string MetricsPath = sus::bench::stripMetricsOutArg(argc, argv);
  std::vector<char *> Args;
  static char MinTime[] = "--benchmark_min_time=0.01";
  for (int I = 0; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Args.push_back(MinTime);
    else
      Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return sus::bench::writeMetricsOut(MetricsPath);
}
