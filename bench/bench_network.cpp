//===- bench/bench_network.cpp - B4: interpreter throughput ---------------===//
///
/// \file
/// Experiment B4 (DESIGN.md): run-time cost of the network semantics, and
/// the headline §5 payoff — executing a *verified* plan with the monitor
/// switched off versus keeping it on.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"
#include "core/HotelExample.h"
#include "net/Explorer.h"
#include "net/Interpreter.h"

#include <benchmark/benchmark.h>

using namespace sus;
using namespace sus::bench;

namespace {

/// The paper's two-client network, monitored vs unmonitored.
void BM_HotelNetworkRun(benchmark::State &State) {
  bool Monitor = State.range(0) != 0;
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  uint64_t Seed = 1;
  size_t Steps = 0;
  for (auto _ : State) {
    net::InterpreterOptions Opts;
    Opts.MonitorEnabled = Monitor;
    net::Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                       {{Ex.LC1, Ex.C1, Ex.pi1()},
                        {Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                       Opts);
    net::RunStats Stats = I.run(Seed++);
    Steps += Stats.StepsTaken;
    benchmark::DoNotOptimize(Stats.AllCompleted);
  }
  State.counters["steps/iter"] =
      static_cast<double>(Steps) / static_cast<double>(State.iterations());
}
BENCHMARK(BM_HotelNetworkRun)->Arg(0)->Arg(1);

/// Scaling in the number of parallel clients.
void BM_ManyClients(benchmark::State &State) {
  unsigned NumClients = static_cast<unsigned>(State.range(0));
  bool Monitor = State.range(1) != 0;
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);

  std::vector<net::NetworkComponent> Components;
  for (unsigned I = 0; I < NumClients; ++I)
    Components.push_back({Ex.LC1, Ex.C1, Ex.pi1()});

  uint64_t Seed = 1;
  for (auto _ : State) {
    net::InterpreterOptions Opts;
    Opts.MonitorEnabled = Monitor;
    net::Interpreter I(Ctx, Ex.Repo, Ex.Registry, Components, Opts);
    net::RunStats Stats = I.run(Seed++);
    benchmark::DoNotOptimize(Stats.StepsTaken);
  }
}
BENCHMARK(BM_ManyClients)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({16, 0});

/// Long sessions: an N-ping echo conversation inside one session.
void BM_LongSession(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;

  // Client: open { ping!pong? x N } ; service: matching loop unrolled.
  const hist::Expr *CBody = Ctx.empty();
  const hist::Expr *SBody = Ctx.empty();
  for (unsigned I = 0; I < N; ++I) {
    CBody = Ctx.send("Ping", Ctx.receive("Pong", CBody));
    SBody = Ctx.receive("Ping", Ctx.send("Pong", SBody));
  }
  plan::Repository Repo;
  Repo.add(Ctx.symbol("echo"), SBody);
  const hist::Expr *Client = Ctx.request(1, hist::PolicyRef(), CBody);
  plan::Plan Pi;
  Pi.bind(1, Ctx.symbol("echo"));

  uint64_t Seed = 1;
  for (auto _ : State) {
    net::Interpreter I(Ctx, Repo, Registry,
                       {{Ctx.symbol("c"), Client, Pi}},
                       net::InterpreterOptions{});
    net::RunStats Stats = I.run(Seed++);
    benchmark::DoNotOptimize(Stats.StepsTaken);
  }
  State.counters["msgs"] = 2.0 * N;
}
BENCHMARK(BM_LongSession)->RangeMultiplier(4)->Range(4, 256);

/// Committed-choice mode overhead on the compliant hotel plan.
void BM_CommittedChoiceMode(benchmark::State &State) {
  bool Committed = State.range(0) != 0;
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  uint64_t Seed = 1;
  for (auto _ : State) {
    net::InterpreterOptions Opts;
    Opts.CommittedInternalChoice = Committed;
    net::Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                       {{Ex.LC1, Ex.C1, Ex.pi1()}}, Opts);
    net::RunStats Stats = I.run(Seed++);
    benchmark::DoNotOptimize(Stats.AllCompleted);
  }
}
BENCHMARK(BM_CommittedChoiceMode)->Arg(0)->Arg(1);

/// Whole-network exhaustive exploration vs. client count (interleaving
/// blow-up; the price of cross-component capacity-deadlock detection).
void BM_ExploreNetwork(benchmark::State &State) {
  unsigned NumClients = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  std::vector<net::NetworkComponent> Components;
  for (unsigned I = 0; I < NumClients; ++I)
    Components.push_back({Ex.LC1, Ex.C1, Ex.pi1()});
  size_t States = 0;
  for (auto _ : State) {
    auto R = net::exploreNetwork(Ctx, Ex.Repo, Components);
    States = R.States;
    benchmark::DoNotOptimize(R.CanComplete);
  }
  State.counters["states"] = static_cast<double>(States);
}
BENCHMARK(BM_ExploreNetwork)->DenseRange(1, 4, 1);

} // namespace

BENCHMARK_MAIN();
