//===- bench/bench_validity.cpp - B2: validity-check scaling --------------===//
///
/// \file
/// Experiment B2 (DESIGN.md): cost of the §3.1 machinery — dynamic |= η
/// checking as histories grow, monitor count, automaton size, and the
/// effect of the [4]-style framing regularization on the static check.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"
#include "policy/FramedAutomaton.h"
#include "policy/Validity.h"
#include "validity/CostAnalysis.h"
#include "validity/FrameRegularize.h"
#include "validity/StaticValidity.h"

#include <benchmark/benchmark.h>

using namespace sus;
using namespace sus::bench;

namespace {

/// |= η over a growing history with P active policies.
void BM_DynamicValidityHistoryLength(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  unsigned P = static_cast<unsigned>(State.range(1));

  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  registerPolicies(Registry, Ctx.interner(), P, /*K=*/1000);

  policy::History Eta;
  for (unsigned I = 0; I < P; ++I) {
    hist::PolicyRef Ref;
    Ref.Name = Ctx.symbol("pol" + std::to_string(I));
    Eta.appendFrameOpen(Ref);
  }
  for (unsigned I = 0; I < N; ++I)
    Eta.appendEvent(hist::Event{Ctx.symbol("ev" + std::to_string(I % 8)),
                                Value::integer(I)});

  for (auto _ : State) {
    auto R = policy::checkValidity(Eta, Registry, Ctx.interner());
    benchmark::DoNotOptimize(R.Valid);
  }
  State.counters["items"] = static_cast<double>(Eta.size());
}
BENCHMARK(BM_DynamicValidityHistoryLength)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({4096, 1})
    ->Args({256, 4})
    ->Args({256, 16})
    ->Args({256, 64});

/// Automaton size: at-most-K monitors have K+2 states.
void BM_DynamicValidityAutomatonSize(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  Registry.add(
      policy::makeAtMostPolicy(Ctx.interner(), "cap", "evHot", K));

  policy::History Eta;
  hist::PolicyRef Ref;
  Ref.Name = Ctx.symbol("cap");
  Eta.appendFrameOpen(Ref);
  for (unsigned I = 0; I < K; ++I)
    Eta.appendEvent(hist::Event{Ctx.symbol("evHot"), Value()});

  for (auto _ : State) {
    auto R = policy::checkValidity(Eta, Registry, Ctx.interner());
    benchmark::DoNotOptimize(R.Valid);
  }
}
BENCHMARK(BM_DynamicValidityAutomatonSize)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

/// Static plan validity as the composed space grows with request count.
void BM_StaticValidityRequests(benchmark::State &State) {
  unsigned Q = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, 1, 0);
    policy::PolicyRegistry Registry;
    const hist::Expr *Client = echoClient(Ctx, Q);
    plan::Plan Pi;
    for (unsigned I = 0; I < Q; ++I)
      Pi.bind(100 + I, Ctx.symbol("svc0"));
    auto R = validity::checkPlanValidity(Ctx, Client, Ctx.symbol("c"), Pi,
                                         Repo, Registry);
    benchmark::DoNotOptimize(R.Valid);
    State.counters["states"] = static_cast<double>(R.ExploredStates);
  }
}
BENCHMARK(BM_StaticValidityRequests)->RangeMultiplier(2)->Range(1, 64);

/// Ablation: redundant same-policy framing nesting with and without the
/// [4] regularization.
void BM_StaticValidityRegularization(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  bool Regularize = State.range(1) != 0;
  for (auto _ : State) {
    hist::HistContext Ctx;
    policy::PolicyRegistry Registry;
    registerPolicies(Registry, Ctx.interner(), 1, 1000);

    // pol0[ pol0[ ... event chain ... ]] nested Depth times.
    hist::PolicyRef Ref;
    Ref.Name = Ctx.symbol("pol0");
    const hist::Expr *Body = eventChain(Ctx, 16);
    for (unsigned I = 0; I < Depth; ++I)
      Body = Ctx.framing(Ref, Body);
    const hist::Expr *Client =
        Ctx.request(1, hist::PolicyRef(),
                    Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
    // Attach the framed chain before the session.
    Client = Ctx.seq(Body, Client);

    plan::Repository Repo = echoRepository(Ctx, 1, 0);
    plan::Plan Pi;
    Pi.bind(1, Ctx.symbol("svc0"));

    validity::StaticValidityOptions Opts;
    Opts.Regularize = Regularize;
    auto R = validity::checkPlanValidity(Ctx, Client, Ctx.symbol("c"), Pi,
                                         Repo, Registry, Opts);
    benchmark::DoNotOptimize(R.Valid);
    State.counters["states"] = static_cast<double>(R.ExploredStates);
  }
}
BENCHMARK(BM_StaticValidityRegularization)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({32, 1});

/// Raw regularization throughput.
void BM_RegularizePass(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    const hist::Expr *E =
        nestedFramings(Ctx, eventChain(Ctx, 32), Depth);
    // Re-nest the same policy to make half the frames redundant.
    hist::PolicyRef Ref;
    Ref.Name = Ctx.symbol("pol0");
    E = Ctx.framing(Ref, Ctx.framing(Ref, E));
    benchmark::DoNotOptimize(validity::regularizeFramings(Ctx, E));
  }
}
BENCHMARK(BM_RegularizePass)->RangeMultiplier(4)->Range(1, 256);

/// Building the §3.1 framed monitor automaton vs. universe size.
void BM_FramedAutomatonBuild(benchmark::State &State) {
  unsigned U = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  Registry.add(
      policy::makeAtMostPolicy(Ctx.interner(), "cap", "evHot", 8));
  hist::PolicyRef Ref;
  Ref.Name = Ctx.symbol("cap");
  auto Inst = Registry.instantiate(Ref, Ctx.interner());

  std::vector<hist::Event> Universe;
  for (unsigned I = 0; I < U; ++I)
    Universe.push_back(
        hist::Event{Ctx.symbol("ev" + std::to_string(I)), Value()});
  Universe.push_back(hist::Event{Ctx.symbol("evHot"), Value()});

  size_t States = 0;
  for (auto _ : State) {
    policy::FramedAutomaton A =
        policy::buildFramedAutomaton(*Inst, Universe);
    States = A.Automaton.numStates();
    benchmark::DoNotOptimize(A.Automaton.numStates());
  }
  State.counters["dfa_states"] = static_cast<double>(States);
}
BENCHMARK(BM_FramedAutomatonBuild)->RangeMultiplier(4)->Range(4, 256);

/// Checking a history through the framed automaton (amortized: run cost
/// only, automaton prebuilt) vs. the dynamic checker.
void BM_FramedAutomatonCheck(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  std::vector<hist::Event> Universe = {
      hist::Event{Ctx.symbol("evHot"), Value()},
      hist::Event{Ctx.symbol("evCold"), Value()}};

  policy::PolicyRegistry Registry;
  Registry.add(
      policy::makeAtMostPolicy(Ctx.interner(), "cap", "evHot", 64));
  hist::PolicyRef Ref;
  Ref.Name = Ctx.symbol("cap");
  auto Inst = Registry.instantiate(Ref, Ctx.interner());
  policy::FramedAutomaton A = policy::buildFramedAutomaton(*Inst, Universe);

  policy::History Eta;
  Eta.appendFrameOpen(Ref);
  for (unsigned I = 0; I < N; ++I)
    Eta.appendEvent(Universe[I % 2]);

  for (auto _ : State)
    benchmark::DoNotOptimize(A.violates(Eta, Ref));
}
BENCHMARK(BM_FramedAutomatonCheck)->RangeMultiplier(4)->Range(16, 1024);

/// Worst-case cost analysis vs. expression size (B2 quantitative add-on).
void BM_CostAnalysis(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  hist::HistContext Ctx;
  const hist::Expr *E = eventChain(Ctx, N);
  validity::CostModel Model;
  Model.DefaultCost = 1;
  for (auto _ : State) {
    auto R = validity::maxEventCost(Ctx, E, Model);
    benchmark::DoNotOptimize(R.MaxCost);
  }
}
BENCHMARK(BM_CostAnalysis)->RangeMultiplier(4)->Range(16, 1024);

} // namespace

BENCHMARK_MAIN();
