#!/usr/bin/env python3
"""B11: daemon-served verification latency, warm vs cold (BENCH_daemon.json).

Generates a B9-style multi-family repository as a .sus file (the same
shape bench_plans.cpp builds in memory: each family speaks its own
request/ack channel pair, publishes one good recursive responder and
K-1 decoys that accept the family request but answer on a dead
channel), then measures what a user actually pays per verification:

  cold      a full one-shot process (`susd --warm`): parse 10k
            services, compile, build the index, verify from an empty
            cache — the pre-daemon cost of every single `susc` run;
  snapshot  the same one-shot but loading a persistent cache snapshot
            first (`susd --snapshot ... --warm`): parsing is still
            paid, the memo tables are not;
  daemon    one `susc --connect verify` request against a resident
            warmed daemon: the parse, the DFAs, the index and every
            memo table are already hot.

Writes BENCH_daemon.json next to the repo root. The acceptance bar for
PR 10 is daemon-served warm latency >= 5x better than cold.

Usage: daemon_bench.py <susd> <susc> [--families N] [--per-family K]
                       [--out BENCH_daemon.json]
"""

import argparse
import json
import os
import socket
import statistics
import subprocess
import sys
import tempfile
import time


def generate_b9(path, families, per_family, clients):
    with open(path, "w") as f:
        f.write("# B11 benchmark repository: %d families x %d services.\n"
                % (families, per_family))
        for i in range(families):
            q, a = "f%dq" % i, "f%da" % i
            f.write("service f%dg { mu h . %s? . %s! . h }\n" % (i, q, a))
            for j in range(1, per_family):
                f.write("service f%dd%d { mu h . %s? . f%dx%d! . h }\n"
                        % (i, j, q, i, j))
        for c in range(clients):
            fam_a, fam_b = (2 * c) % families, (2 * c + 1) % families
            # Three request/ack rounds per session: enough depth that the
            # compliance products and validity explorations (what the
            # snapshot memoizes) dominate over raw parsing.
            rounds_a = " . ".join("f%dq! . f%da?" % (fam_a, fam_a)
                                  for _ in range(3))
            rounds_b = " . ".join("f%dq! . f%da?" % (fam_b, fam_b)
                                  for _ in range(3))
            f.write("client c%d { open %d { %s } ; open %d { %s } }\n"
                    % (c, 2 * c + 1, rounds_a, 2 * c + 2, rounds_b))


def run_timed(argv):
    start = time.monotonic()
    r = subprocess.run(argv, capture_output=True, timeout=600)
    elapsed_ms = (time.monotonic() - start) * 1000.0
    if r.returncode != 0:
        sys.exit("daemon_bench: %s exited %d:\n%s" %
                 (" ".join(argv), r.returncode,
                  r.stderr.decode(errors="replace")))
    return elapsed_ms, r.stdout


def median_timed(argv, runs):
    times, out = [], b""
    for _ in range(runs):
        ms, out = run_timed(argv)
        times.append(ms)
    return statistics.median(times), out


def wait_for_socket(path, proc, deadline_s=120):
    end = time.time() + deadline_s
    while time.time() < end:
        if proc.poll() is not None:
            sys.exit("daemon_bench: susd exited early (%d)" % proc.returncode)
        if os.path.exists(path):
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(path)
                s.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    sys.exit("daemon_bench: daemon socket never came up")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("susd")
    ap.add_argument("susc")
    ap.add_argument("--families", type=int, default=1000)
    ap.add_argument("--per-family", type=int, default=10)
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--runs", type=int, default=3)
    ap.add_argument("--out", default="BENCH_daemon.json")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="susd-bench-", dir="/tmp") as tmp:
        sus = os.path.join(tmp, "b9.sus")
        snap = os.path.join(tmp, "b9.snap")
        sock = os.path.join(tmp, "susd.sock")
        generate_b9(sus, args.families, args.per_family, args.clients)

        # Cold one-shot (and cut the snapshot on the last run).
        cold_ms, cold_out = median_timed([args.susd, "--warm", sus],
                                         args.runs)
        run_timed([args.susd, "--warm", "--save-snapshot", snap, sus])

        # Snapshot-loaded one-shot: parse still paid, memo tables not.
        snap_ms, snap_out = median_timed(
            [args.susd, "--snapshot", snap, "--warm", sus], args.runs)
        if snap_out != cold_out:
            sys.exit("daemon_bench: snapshot-loaded output diverged")

        # Resident daemon: per-request latency against warm state.
        daemon = subprocess.Popen(
            [args.susd, "--listen", sock, "--warm", sus],
            stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
        try:
            wait_for_socket(sock, daemon)
            warm_ms, warm_out = median_timed(
                [args.susc, "--connect", sock, "verify"],
                max(args.runs, 10))
            if warm_out != cold_out:
                sys.exit("daemon_bench: daemon-served output diverged")
            subprocess.run([args.susc, "--connect", sock, "shutdown"],
                           capture_output=True, timeout=60)
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    services = args.families * args.per_family
    result = {
        "experiment": "B11 - resident daemon: per-request verify latency "
                      "against warm state vs the cold one-shot every plain "
                      "susc run pays, plus the snapshot-loaded middle point",
        "date": time.strftime("%Y-%m-%d"),
        "host": {"cpus": os.cpu_count() or 1,
                 "note": "wall-clock medians; all three modes print "
                         "byte-identical verification reports"},
        "workload": {
            "services": services,
            "families": args.families,
            "per_family": args.per_family,
            "clients": args.clients,
            "requests_per_client": 2,
        },
        "latency_ms": {
            "cold_oneshot": round(cold_ms, 2),
            "snapshot_oneshot": round(snap_ms, 2),
            "daemon_request_warm": round(warm_ms, 2),
        },
        "speedup": {
            "daemon_vs_cold": round(cold_ms / warm_ms, 2),
            "snapshot_vs_cold": round(cold_ms / snap_ms, 2),
            "note": "the one-shot snapshot path still re-parses the "
                    "10k-service file and re-interns the expression pool, "
                    "which roughly offsets the memoized verification at "
                    "this workload; the snapshot's payoff is the daemon's "
                    "instant warm restart (identical verdict bytes, "
                    "daemon_request_warm latency from request one)",
        },
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=1)
        f.write("\n")
    print(json.dumps(result, indent=1))
    if cold_ms / warm_ms < 5.0:
        sys.exit("daemon_bench: FAIL: warm speedup %.2fx is below the 5x bar"
                 % (cold_ms / warm_ms))
    print("daemon_bench: warm speedup %.1fx (bar: 5x)" % (cold_ms / warm_ms))


if __name__ == "__main__":
    main()
