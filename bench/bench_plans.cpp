//===- bench/bench_plans.cpp - B3: plan construction scaling --------------===//
///
/// \file
/// Experiment B3 (DESIGN.md): cost of constructing valid plans (§5) as the
/// repository and the request count grow; the crossover between exhaustive
/// enumeration and compliance-pruned search.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"
#include "core/Verifier.h"

#include <benchmark/benchmark.h>

using namespace sus;
using namespace sus::bench;

namespace {

/// Pure enumeration (no checking): candidate explosion R^Q.
void BM_EnumerateOnly(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, R, 0);
    const hist::Expr *Client = echoClient(Ctx, Q);
    auto Result = plan::enumeratePlans(Client, Repo);
    benchmark::DoNotOptimize(Result.Plans.size());
    State.counters["plans"] = static_cast<double>(Result.Plans.size());
  }
}
BENCHMARK(BM_EnumerateOnly)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 3});

/// The full §5 procedure: exhaustive (check every candidate) vs pruned
/// (discard non-compliant bindings during enumeration). Half of the
/// repository is non-compliant, so pruning cuts the space by 2^Q.
void BM_VerifyClient(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  bool Prune = State.range(2) != 0;
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, R, R / 2);
    policy::PolicyRegistry Registry;
    const hist::Expr *Client = echoClient(Ctx, Q);

    core::VerifierOptions Opts;
    Opts.PruneWithCompliance = Prune;
    core::Verifier V(Ctx, Repo, Registry, Opts);
    auto Report = V.verifyClient(Client, Ctx.symbol("c"));
    benchmark::DoNotOptimize(Report.Verdicts.size());
    State.counters["candidates"] =
        static_cast<double>(Report.CandidateCount);
    State.counters["valid"] =
        static_cast<double>(Report.validPlans().size());
  }
}
BENCHMARK(BM_VerifyClient)
    ->Args({4, 2, 0})
    ->Args({4, 2, 1})
    ->Args({8, 2, 0})
    ->Args({8, 2, 1})
    ->Args({8, 3, 0})
    ->Args({8, 3, 1})
    ->Args({16, 2, 0})
    ->Args({16, 2, 1});

/// Single-plan verification cost (compliance + security) as the nested
/// session chain deepens: a client calling a broker calling a broker ...
void BM_CheckPlanNestedDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo;
    // brokerK forwards to brokerK+1; the last one answers directly.
    for (unsigned I = 0; I < Depth; ++I) {
      const hist::Expr *Inner =
          I + 1 < Depth
              ? Ctx.request(200 + I + 1, hist::PolicyRef(),
                            Ctx.send("Ping",
                                     Ctx.receive("Pong", Ctx.empty())))
              : Ctx.empty();
      const hist::Expr *Svc = Ctx.receive(
          "Ping", Ctx.seq(Inner, Ctx.send("Pong", Ctx.empty())));
      Repo.add(Ctx.symbol("hop" + std::to_string(I)), Svc);
    }
    const hist::Expr *Client =
        Ctx.request(200, hist::PolicyRef(),
                    Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
    plan::Plan Pi;
    for (unsigned I = 0; I < Depth; ++I)
      Pi.bind(200 + I, Ctx.symbol("hop" + std::to_string(I)));

    policy::PolicyRegistry Registry;
    core::Verifier V(Ctx, Repo, Registry);
    auto Verdict = V.checkPlan(Client, Ctx.symbol("c"), Pi);
    benchmark::DoNotOptimize(Verdict.isValid());
    State.counters["sec_states"] =
        static_cast<double>(Verdict.Security.ExploredStates);
  }
}
BENCHMARK(BM_CheckPlanNestedDepth)->DenseRange(1, 13, 3);

} // namespace

BENCHMARK_MAIN();
