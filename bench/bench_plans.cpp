//===- bench/bench_plans.cpp - B3+B9: plan search at repository scale -----===//
///
/// \file
/// Experiment B3 (DESIGN.md): cost of constructing valid plans (§5) as the
/// repository and the request count grow; the crossover between exhaustive
/// enumeration and compliance-pruned search.
///
/// Experiment B9 (DESIGN.md §10): repository-scale candidate selection —
/// indexed lookup vs full scan over a 10k-service multi-family repository
/// (plans-verified/sec), index construction cost, and heavy-churn
/// incremental repair (worker sweep, p99 repair latency, re-verified
/// fraction).
///
//===----------------------------------------------------------------------===//

#include "MetricsOut.h"
#include "Workloads.h"
#include "core/Repair.h"
#include "core/Verifier.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace sus;
using namespace sus::bench;

namespace {

//===----------------------------------------------------------------------===//
// B3: plan construction scaling (unchanged seed benchmarks)
//===----------------------------------------------------------------------===//

/// Pure enumeration (no checking): candidate explosion R^Q.
void BM_EnumerateOnly(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, R, 0);
    const hist::Expr *Client = echoClient(Ctx, Q);
    auto Result = plan::enumeratePlans(Client, Repo);
    benchmark::DoNotOptimize(Result.Plans.size());
    State.counters["plans"] = static_cast<double>(Result.Plans.size());
  }
}
BENCHMARK(BM_EnumerateOnly)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 3});

/// The full §5 procedure: exhaustive (check every candidate) vs pruned
/// (discard non-compliant bindings during enumeration). Half of the
/// repository is non-compliant, so pruning cuts the space by 2^Q.
void BM_VerifyClient(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  bool Prune = State.range(2) != 0;
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, R, R / 2);
    policy::PolicyRegistry Registry;
    const hist::Expr *Client = echoClient(Ctx, Q);

    core::VerifierOptions Opts;
    Opts.PruneWithCompliance = Prune;
    core::Verifier V(Ctx, Repo, Registry, Opts);
    auto Report = V.verifyClient(Client, Ctx.symbol("c"));
    benchmark::DoNotOptimize(Report.Verdicts.size());
    State.counters["candidates"] =
        static_cast<double>(Report.CandidateCount);
    State.counters["valid"] =
        static_cast<double>(Report.validPlans().size());
  }
}
BENCHMARK(BM_VerifyClient)
    ->Args({4, 2, 0})
    ->Args({4, 2, 1})
    ->Args({8, 2, 0})
    ->Args({8, 2, 1})
    ->Args({8, 3, 0})
    ->Args({8, 3, 1})
    ->Args({16, 2, 0})
    ->Args({16, 2, 1});

/// Single-plan verification cost (compliance + security) as the nested
/// session chain deepens: a client calling a broker calling a broker ...
void BM_CheckPlanNestedDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo;
    // brokerK forwards to brokerK+1; the last one answers directly.
    for (unsigned I = 0; I < Depth; ++I) {
      const hist::Expr *Inner =
          I + 1 < Depth
              ? Ctx.request(200 + I + 1, hist::PolicyRef(),
                            Ctx.send("Ping",
                                     Ctx.receive("Pong", Ctx.empty())))
              : Ctx.empty();
      const hist::Expr *Svc = Ctx.receive(
          "Ping", Ctx.seq(Inner, Ctx.send("Pong", Ctx.empty())));
      Repo.add(Ctx.symbol("hop" + std::to_string(I)), Svc);
    }
    const hist::Expr *Client =
        Ctx.request(200, hist::PolicyRef(),
                    Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
    plan::Plan Pi;
    for (unsigned I = 0; I < Depth; ++I)
      Pi.bind(200 + I, Ctx.symbol("hop" + std::to_string(I)));

    policy::PolicyRegistry Registry;
    core::Verifier V(Ctx, Repo, Registry);
    auto Verdict = V.checkPlan(Client, Ctx.symbol("c"), Pi);
    benchmark::DoNotOptimize(Verdict.isValid());
    State.counters["sec_states"] =
        static_cast<double>(Verdict.Security.ExploredStates);
  }
}
BENCHMARK(BM_CheckPlanNestedDepth)->DenseRange(1, 13, 3);

//===----------------------------------------------------------------------===//
// B9 workload: a multi-family repository at 10k-service scale
//===----------------------------------------------------------------------===//

/// \p NumFamilies channel families with pairwise disjoint alphabets
/// (family f speaks f<f>r / f<f>a); each family publishes one good
/// recursive responder and many that answer on a dead channel. Selective
/// by construction: only the ~NumServices/NumFamilies same-family
/// services can possibly serve a family-f request, which is exactly what
/// the index's buckets discover without building a single product.
struct RepoWorkload {
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  plan::Repository Repo;
  unsigned NumFamilies = 0;
  std::vector<const hist::Expr *> Clients; ///< Rotating request mix.
  std::vector<plan::Loc> GoodLocs;         ///< One per family (churn pool).
};

std::string famChannel(unsigned Family, const char *Suffix) {
  return "f" + std::to_string(Family) + Suffix;
}

/// The family-f responder: µh. f<f>r? . <answer>! . h. The good one
/// answers on the family's ack channel, a bad one on a dead channel —
/// refuted only by the in-family compliance product, never by a bucket
/// miss (it *does* offer the family's request channel).
const hist::Expr *familyService(hist::HistContext &Ctx, unsigned Family,
                                bool Good) {
  return Ctx.mu("h",
                Ctx.receive(famChannel(Family, "r"),
                            Ctx.send(famChannel(Family, Good ? "a" : "x"),
                                     Ctx.var("h"))));
}

/// A family-f client body: \p Depth request/ack rounds, then done. The
/// recursive responder serves any depth, so depth rotation yields
/// distinct (hash-consed) bodies over the same service set.
const hist::Expr *familyBody(hist::HistContext &Ctx, unsigned Family,
                             unsigned Depth) {
  const hist::Expr *E = Ctx.empty();
  for (unsigned I = 0; I < Depth; ++I)
    E = Ctx.send(famChannel(Family, "r"),
                 Ctx.receive(famChannel(Family, "a"), E));
  return E;
}

std::unique_ptr<RepoWorkload> buildRepoWorkload(unsigned NumServices,
                                                unsigned NumFamilies) {
  auto WP = std::make_unique<RepoWorkload>();
  RepoWorkload &W = *WP;
  W.NumFamilies = NumFamilies;
  for (unsigned I = 0; I < NumServices; ++I) {
    unsigned Family = I % NumFamilies;
    bool Good = I < NumFamilies; // First pass over the families.
    plan::Loc L = W.Ctx.symbol("svc" + std::to_string(I));
    W.Repo.add(L, familyService(W.Ctx, Family, Good));
    if (Good)
      W.GoodLocs.push_back(L);
  }
  // 128 rotating clients: every family, depths 1..4, two requests each.
  for (unsigned K = 0; K < 128; ++K) {
    unsigned Family = K % NumFamilies;
    unsigned Depth = 1 + (K / NumFamilies) % 4;
    const hist::Expr *Body = familyBody(W.Ctx, Family, Depth);
    W.Clients.push_back(
        W.Ctx.seq(W.Ctx.request(100, hist::PolicyRef(), Body),
                  W.Ctx.request(101, hist::PolicyRef(), Body)));
  }
  return WP;
}

RepoWorkload &repoWorkload(unsigned NumServices) {
  // One shared instance per size; HistContext pins its address.
  static std::unique_ptr<RepoWorkload> W1k =
      buildRepoWorkload(1000, 100);
  static std::unique_ptr<RepoWorkload> W10k =
      buildRepoWorkload(10000, 100);
  return NumServices >= 10000 ? *W10k : *W1k;
}

//===----------------------------------------------------------------------===//
// B9: indexed candidate selection vs repository scan
//===----------------------------------------------------------------------===//

/// Steady-state client verification throughput over a warm verifier:
/// range(0) = repository size, range(1) = UseIndex. Both sides share the
/// workload and memoize compliance identically; the measured difference
/// is candidate selection — O(answer) bucket lookups vs an O(repository)
/// scan per request site. Reported as plans-verified/sec.
void BM_RepositoryVerify(benchmark::State &State) {
  RepoWorkload &W = repoWorkload(static_cast<unsigned>(State.range(0)));
  core::VerifierOptions Opts;
  Opts.UseIndex = State.range(1) != 0;
  core::Verifier V(W.Ctx, W.Repo, W.Registry, Opts);
  plan::Loc ClientLoc = W.Ctx.symbol("client");

  size_t K = 0, Verified = 0, Bindings = 0;
  for (auto _ : State) {
    const hist::Expr *Client = W.Clients[K++ % W.Clients.size()];
    auto Report = V.verifyClient(Client, ClientLoc);
    Verified += Report.Verdicts.size();
    Bindings += Report.BindingsTried;
    benchmark::DoNotOptimize(Report.validPlans().size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Verified));
  State.counters["bindings_per_client"] =
      benchmark::Counter(static_cast<double>(Bindings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RepositoryVerify)
    ->ArgNames({"services", "index"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

/// One-time index construction: summarize every published service and
/// fill the buckets. The cost a session pays before the first lookup.
void BM_IndexBuild(benchmark::State &State) {
  RepoWorkload &W = repoWorkload(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    plan::ServiceIndex Index(W.Ctx, W.Repo);
    benchmark::DoNotOptimize(Index.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(W.Repo.size()));
}
BENCHMARK(BM_IndexBuild)->ArgNames({"services"})->Arg(1000)->Arg(10000);

//===----------------------------------------------------------------------===//
// B9: heavy churn — incremental repair (worker sweep, p99 latency)
//===----------------------------------------------------------------------===//

/// Single-service churn against the 10k repository: each iteration
/// unpublishes one good responder and republishes it, patching the
/// session through RepairSession::applyDelta both times. range(0) is the
/// verifier's worker count. Reports repairs/sec, the p99 wall-clock
/// latency of one applyDelta in microseconds, and the fraction of the
/// plan set that had to be re-verified (the <5% claim of EXPERIMENTS.md
/// B9).
void BM_ChurnRepair(benchmark::State &State) {
  RepoWorkload &W = repoWorkload(10000);
  core::VerifierOptions Opts;
  Opts.UseIndex = true;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  core::Verifier V(W.Ctx, W.Repo, W.Registry, Opts);
  plan::Loc ClientLoc = W.Ctx.symbol("client");

  // One session per family-0 client shape; repairs patch it in place.
  core::RepairSession Session(V, W.Clients[0], ClientLoc);
  Session.verify();

  std::vector<int64_t> LatencyUs;
  double ReverifiedSum = 0.0;
  size_t Repairs = 0, K = 0;
  for (auto _ : State) {
    plan::Loc Touched = W.GoodLocs[K++ % W.GoodLocs.size()];
    const hist::Expr *Old = W.Repo.find(Touched);
    for (int Phase = 0; Phase < 2; ++Phase) {
      plan::RepositoryDelta Delta;
      if (Phase == 0)
        Delta.Changes.push_back(plan::applyRemove(W.Repo, Touched));
      else
        Delta.Changes.push_back(
            plan::applyPublish(W.Repo, Touched, Old));
      auto T0 = std::chrono::steady_clock::now();
      auto Out = Session.applyDelta(Delta);
      auto T1 = std::chrono::steady_clock::now();
      if (!Out.ok()) {
        State.SkipWithError("repair unexpectedly inconclusive");
        return;
      }
      LatencyUs.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
              .count());
      ReverifiedSum += Out.value().reverifiedFraction();
      ++Repairs;
    }
  }
  std::sort(LatencyUs.begin(), LatencyUs.end());
  if (!LatencyUs.empty())
    State.counters["p99_repair_us"] = static_cast<double>(
        LatencyUs[std::min(LatencyUs.size() - 1,
                           (LatencyUs.size() * 99) / 100)]);
  if (Repairs > 0)
    State.counters["reverified_frac"] =
        ReverifiedSum / static_cast<double>(Repairs);
  State.SetItemsProcessed(static_cast<int64_t>(Repairs));
}
// Real time: with Jobs > 1 the calling thread parks while pool workers
// re-verify, so CPU-time rates would be meaningless.
BENCHMARK(BM_ChurnRepair)
    ->ArgNames({"jobs"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// The from-scratch alternative the repair path replaces: re-run the full
/// verifyClient after every single-service churn (fresh cache — a scratch
/// run has no session to keep warm). The baseline for the p99 comparison.
void BM_ChurnFromScratch(benchmark::State &State) {
  RepoWorkload &W = repoWorkload(10000);
  plan::Loc ClientLoc = W.Ctx.symbol("client");
  size_t K = 0;
  for (auto _ : State) {
    plan::Loc Touched = W.GoodLocs[K++ % W.GoodLocs.size()];
    const hist::Expr *Old = W.Repo.find(Touched);
    plan::RepositoryDelta Delta;
    Delta.Changes.push_back(plan::applyRemove(W.Repo, Touched));
    Delta.Changes.push_back(plan::applyPublish(W.Repo, Touched, Old));
    core::VerifierOptions Opts;
    Opts.UseIndex = true;
    core::Verifier V(W.Ctx, W.Repo, W.Registry, Opts);
    auto Report = V.verifyClient(W.Clients[0], ClientLoc);
    benchmark::DoNotOptimize(Report.Verdicts.size());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ChurnFromScratch);

} // namespace

/// Like BENCHMARK_MAIN(), plus the `--quick` alias CI uses (rewritten to
/// a short --benchmark_min_time) and `--metrics-out=FILE` (sus-metrics-v1
/// JSON, including the plan.* counters, dumped after the run).
int main(int argc, char **argv) {
  std::string MetricsPath = sus::bench::stripMetricsOutArg(argc, argv);
  std::vector<char *> Args;
  static char MinTime[] = "--benchmark_min_time=0.01";
  for (int I = 0; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Args.push_back(MinTime);
    else
      Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return sus::bench::writeMetricsOut(MetricsPath);
}
