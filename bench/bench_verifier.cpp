//===- bench/bench_verifier.cpp - B7: verification pipeline scaling -------===//
///
/// \file
/// Experiment B7 (DESIGN.md): the §5 verifier as a pipeline — serial
/// recompute-per-plan (the pre-cache baseline), serial over the shared
/// VerifierCache, and cache + parallel security checking over the
/// work-stealing pool. The headline workload is a re-verification
/// *session*: the repository grows by one service at a time and the
/// client is re-verified after each step, so the cache answers every
/// previously-explored plan instantly while the baseline re-explores the
/// whole candidate space from scratch. Single-shot sweeps over width ×
/// request count × depth are kept alongside. Run with
/// `--benchmark_format=json` to extend BENCH_verifier.json, the perf
/// trajectory tracked across PRs.
///
/// The binary self-checks determinism at startup: the three modes must
/// produce element-wise identical verdicts at every step of the
/// acceptance session (8 services × 3 requests, 4 worker threads) or it
/// aborts.
///
//===----------------------------------------------------------------------===//

#include "MetricsOut.h"
#include "Workloads.h"
#include "automata/KernelStats.h"
#include "core/Verifier.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace sus;
using namespace sus::bench;

namespace {

/// Mode knob for the sweeps below.
enum Mode : int {
  SerialUncached = 0, ///< The seed behaviour: every plan recomputes.
  SerialCached = 1,   ///< Shared VerifierCache, one thread.
  ParallelCached = 2, ///< Shared VerifierCache + 4 worker shards.
};

core::VerifierOptions optionsFor(Mode M) {
  core::VerifierOptions Opts;
  Opts.UseCache = M != SerialUncached;
  Opts.Jobs = M == ParallelCached ? 4 : 1;
  return Opts;
}

/// A re-verification session over a growing repository: start from
/// \p R chatty services (half of them non-compliant), verify the
/// \p Q-request client, then add one compliant service and re-verify,
/// \p Steps times. Half the services are non-compliant, and a light
/// at-most policy keeps the security monitors honest. Returns one report
/// per verification pass.
std::vector<core::VerificationReport>
runSession(hist::HistContext &Ctx, unsigned R, unsigned Q, unsigned Depth,
           unsigned Steps, Mode M) {
  plan::Repository Repo =
      chattyRepository(Ctx, R, R / 2, Depth, /*EventsPerCall=*/1);
  policy::PolicyRegistry Registry;
  Registry.add(policy::makeAtMostPolicy(Ctx.interner(), "pol0", "evHot", 8));
  hist::PolicyRef Phi;
  Phi.Name = Ctx.symbol("pol0");
  const hist::Expr *Client = chattyClient(Ctx, Q, Depth, Phi);

  core::Verifier V(Ctx, Repo, Registry, optionsFor(M));
  std::vector<core::VerificationReport> Reports;
  Reports.push_back(V.verifyClient(Client, Ctx.symbol("c")));
  for (unsigned S = 0; S < Steps; ++S) {
    Repo.add(Ctx.symbol("svc" + std::to_string(R + S)),
             chattyService(Ctx, Depth, /*Bad=*/false, /*EventsPerCall=*/1));
    Reports.push_back(V.verifyClient(Client, Ctx.symbol("c")));
  }
  return Reports;
}

/// Startup determinism check: identical verdicts at every step of the
/// acceptance session (R=8, Q=3, 4 worker threads) across all modes.
bool selfCheck() {
  std::vector<std::vector<std::vector<plan::Plan>>> Valid;
  std::vector<std::vector<size_t>> Candidates;
  for (Mode M : {SerialUncached, SerialCached, ParallelCached}) {
    hist::HistContext Ctx;
    std::vector<core::VerificationReport> Reports =
        runSession(Ctx, 8, 3, 6, /*Steps=*/2, M);
    Valid.emplace_back();
    Candidates.emplace_back();
    for (const core::VerificationReport &Report : Reports) {
      Valid.back().push_back(Report.validPlans());
      Candidates.back().push_back(Report.Verdicts.size());
    }
  }
  // Plans are Symbol maps; symbol ids are identical across the fresh
  // contexts because each run interns the same names in the same order.
  if (Valid[0] != Valid[1] || Valid[1] != Valid[2] ||
      Candidates[0] != Candidates[1] || Candidates[1] != Candidates[2]) {
    std::fprintf(stderr,
                 "bench_verifier: verdicts diverge across modes\n");
    std::abort();
  }
  return true;
}

const bool SelfChecked = selfCheck();

/// The headline benchmark: a 4-step re-verification session at
/// repository width R × request count Q, protocol depth 6, across the
/// three modes. The baseline re-explores every candidate plan on every
/// pass; the cached pipeline only pays for plans the repository growth
/// made possible.
void BM_VerifySession(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  Mode M = static_cast<Mode>(State.range(2));
  automata::resetKernelNanos();
  for (auto _ : State) {
    hist::HistContext Ctx;
    std::vector<core::VerificationReport> Reports =
        runSession(Ctx, R, Q, 6, /*Steps=*/4, M);
    benchmark::DoNotOptimize(Reports.size());
    double Candidates = 0, Valid = 0;
    for (const core::VerificationReport &Report : Reports) {
      Candidates += static_cast<double>(Report.Verdicts.size());
      Valid += static_cast<double>(Report.validPlans().size());
    }
    State.counters["candidates"] = Candidates;
    State.counters["valid"] = Valid;
  }
  // Automata-kernel wall time per iteration, separated from the rest of
  // the pipeline (enumeration, derivation, caching, thread handoff).
  State.counters["automata_kernel_ms_per_iter"] =
      static_cast<double>(automata::kernelNanos()) / 1e6 /
      static_cast<double>(State.iterations());
}
BENCHMARK(BM_VerifySession)
    ->Args({4, 2, SerialUncached})
    ->Args({4, 2, SerialCached})
    ->Args({4, 2, ParallelCached})
    ->Args({8, 3, SerialUncached})
    ->Args({8, 3, SerialCached})
    ->Args({8, 3, ParallelCached})
    ->Args({12, 3, SerialUncached})
    ->Args({12, 3, SerialCached})
    ->Args({12, 3, ParallelCached});

/// Single-shot sweep: one verifyClient pass (Steps=0). Isolates the
/// within-pass gains (shared compliance products and projections; the
/// per-plan security explorations are inherently distinct work).
void BM_VerifySingleShot(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  Mode M = static_cast<Mode>(State.range(2));
  automata::resetKernelNanos();
  for (auto _ : State) {
    hist::HistContext Ctx;
    std::vector<core::VerificationReport> Reports =
        runSession(Ctx, R, Q, 6, /*Steps=*/0, M);
    benchmark::DoNotOptimize(Reports.size());
  }
  State.counters["automata_kernel_ms_per_iter"] =
      static_cast<double>(automata::kernelNanos()) / 1e6 /
      static_cast<double>(State.iterations());
}
BENCHMARK(BM_VerifySingleShot)
    ->Args({8, 3, SerialUncached})
    ->Args({8, 3, ParallelCached})
    ->Args({16, 3, SerialUncached})
    ->Args({16, 3, ParallelCached});

/// Depth sweep: per-plan security work grows with protocol depth; the
/// deeper the protocol, the more each cache hit is worth on re-passes.
void BM_VerifyDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  Mode M = static_cast<Mode>(State.range(1));
  for (auto _ : State) {
    hist::HistContext Ctx;
    std::vector<core::VerificationReport> Reports =
        runSession(Ctx, 8, 2, Depth, /*Steps=*/2, M);
    benchmark::DoNotOptimize(Reports.size());
  }
}
BENCHMARK(BM_VerifyDepth)
    ->Args({2, SerialUncached})
    ->Args({2, ParallelCached})
    ->Args({8, SerialUncached})
    ->Args({8, ParallelCached})
    ->Args({16, SerialUncached})
    ->Args({16, ParallelCached});

/// Cross-client cache reuse: verifying a whole network of N clients with
/// the same contract shares every compliance pair across clients.
void BM_VerifyNetworkSharedCache(benchmark::State &State) {
  unsigned Clients = static_cast<unsigned>(State.range(0));
  bool Cached = State.range(1) != 0;
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = chattyRepository(Ctx, 8, 4, 4);
    policy::PolicyRegistry Registry;
    core::VerifierOptions Opts;
    Opts.UseCache = Cached;
    core::Verifier V(Ctx, Repo, Registry, Opts);
    std::vector<std::pair<const hist::Expr *, plan::Loc>> Net;
    const hist::Expr *Client = chattyClient(Ctx, 2, 4);
    for (unsigned I = 0; I < Clients; ++I)
      Net.push_back({Client, Ctx.symbol("c" + std::to_string(I))});
    core::NetworkReport Report = V.verifyNetwork(Net);
    benchmark::DoNotOptimize(Report.allClientsHaveValidPlans());
  }
}
BENCHMARK(BM_VerifyNetworkSharedCache)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1});

/// The enumerator after the bind/undo rewrite: pure candidate explosion,
/// no checking (companion to B3's BM_EnumerateOnly; kept here so the B7
/// JSON tracks it too).
void BM_EnumerateBindUndo(benchmark::State &State) {
  unsigned R = static_cast<unsigned>(State.range(0));
  unsigned Q = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    hist::HistContext Ctx;
    plan::Repository Repo = echoRepository(Ctx, R, 0);
    const hist::Expr *Client = echoClient(Ctx, Q);
    auto Result = plan::enumeratePlans(Client, Repo);
    benchmark::DoNotOptimize(Result.Plans.size());
    State.counters["plans"] = static_cast<double>(Result.Plans.size());
  }
}
BENCHMARK(BM_EnumerateBindUndo)->Args({8, 4})->Args({16, 3})->Args({16, 4});

} // namespace

/// Like BENCHMARK_MAIN(), plus `--metrics-out=FILE`: dump the pipeline
/// metrics registry (cache hit rates, pool counters, kernel time) as
/// sus-metrics-v1 JSON after the run.
int main(int argc, char **argv) {
  std::string MetricsPath = stripMetricsOutArg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return writeMetricsOut(MetricsPath);
}
